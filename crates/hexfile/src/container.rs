//! The MAVR container: symbol information prepended to an Intel HEX file.
//!
//! The paper's flash utility "strips all symbol information from the binary
//! before uploading it onto the board, \[so\] we modified it by constructing
//! our own symbol table … and prepending it to the application's hex file"
//! (§V-B1). This module defines that on-the-wire format:
//!
//! ```text
//! ;MAVR 1 ATmega2560
//! ;TEXTEND 0x00035e00
//! ;SYM F 0x0000 0x00e2 __vectors
//! ;SYM F 0x00e2 0x0124 main
//! ;OBJ 0x35e00 0x40 vtable_nav
//! ;PTR 0x00035e02
//! :100000000C94...   (standard Intel HEX body)
//! ```
//!
//! Directive lines start with `;`, which standard Intel HEX loaders ignore,
//! so a MAVR container is still a valid HEX file for ordinary tools — the
//! same compatibility trick the paper relies on when it uploads the modified
//! HEX with stock `avrdude`.

use avr_core::device::{Device, ATMEGA1284P, ATMEGA2560};
use avr_core::image::{FirmwareImage, Symbol, SymbolKind};

use crate::intel::{parse_ihex, write_ihex};
use crate::ParseError;

/// Format version emitted by this implementation.
pub const FORMAT_VERSION: u32 = 1;

/// A parsed or to-be-written MAVR container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MavrContainer {
    /// The firmware image carried by the container.
    pub image: FirmwareImage,
}

impl MavrContainer {
    /// Wrap an image for upload to the external flash chip.
    pub fn new(image: FirmwareImage) -> Self {
        MavrContainer { image }
    }

    /// Serialize: symbol directives first, then the Intel HEX body.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let img = &self.image;
        let mut out = String::new();
        writeln!(out, ";MAVR {} {}", FORMAT_VERSION, img.device.name).unwrap();
        writeln!(out, ";TEXTEND {:#010x}", img.text_end).unwrap();
        for s in &img.symbols {
            let tag = match s.kind {
                SymbolKind::Function => "F",
                SymbolKind::Object => "O",
                SymbolKind::Fixed => "X",
            };
            writeln!(out, ";SYM {} {:#x} {:#x} {}", tag, s.addr, s.size, s.name).unwrap();
        }
        for &p in &img.fn_ptr_locs {
            writeln!(out, ";PTR {p:#x}").unwrap();
        }
        out.push_str(&write_ihex(&img.bytes, 0));
        out
    }

    /// Parse a container produced by [`MavrContainer::to_text`].
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let mut device: Option<Device> = None;
        let mut text_end = 0u32;
        let mut symbols = Vec::new();
        let mut fn_ptr_locs = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let t = raw.trim();
            let Some(directive) = t.strip_prefix(';') else {
                continue;
            };
            let mut parts = directive.split_whitespace();
            match parts.next() {
                Some("MAVR") => {
                    let _version = parts.next();
                    let name = parts.next().ok_or_else(|| bad(line, "missing device"))?;
                    device = Some(match name {
                        "ATmega2560" => ATMEGA2560,
                        "ATmega1284P" => ATMEGA1284P,
                        other => return Err(bad(line, &format!("unknown device {other}"))),
                    });
                }
                Some("TEXTEND") => {
                    text_end = parse_num(parts.next(), line)?;
                }
                Some("SYM") => {
                    let kind = match parts.next() {
                        Some("F") => SymbolKind::Function,
                        Some("O") => SymbolKind::Object,
                        Some("X") => SymbolKind::Fixed,
                        other => return Err(bad(line, &format!("bad symbol kind {other:?}"))),
                    };
                    let addr = parse_num(parts.next(), line)?;
                    let size = parse_num(parts.next(), line)?;
                    let name = parts
                        .next()
                        .ok_or_else(|| bad(line, "missing symbol name"))?
                        .to_string();
                    symbols.push(Symbol {
                        name,
                        addr,
                        size,
                        kind,
                    });
                }
                Some("PTR") => {
                    fn_ptr_locs.push(parse_num(parts.next(), line)?);
                }
                _ => {} // unknown comment — ignore, like any HEX loader
            }
        }
        let device = device.ok_or_else(|| bad(0, "missing ;MAVR header"))?;
        let (base, bytes) = parse_ihex(text)?;
        if base != 0 {
            return Err(bad(0, &format!("HEX body must load at 0, got {base:#x}")));
        }
        let image = FirmwareImage {
            device,
            bytes,
            symbols,
            text_end,
            fn_ptr_locs,
        };
        image.validate().map_err(|reason| bad(0, &reason))?;
        Ok(MavrContainer { image })
    }
}

fn bad(line: usize, reason: &str) -> ParseError {
    ParseError::BadDirective {
        line,
        reason: reason.to_string(),
    }
}

fn parse_num(field: Option<&str>, line: usize) -> Result<u32, ParseError> {
    let f = field.ok_or_else(|| bad(line, "missing numeric field"))?;
    let parsed = if let Some(hex) = f.strip_prefix("0x") {
        u32::from_str_radix(hex, 16)
    } else {
        f.parse()
    };
    parsed.map_err(|_| bad(line, &format!("bad number {f}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_image() -> FirmwareImage {
        let mut img = FirmwareImage::new(ATMEGA2560);
        img.bytes = (0u32..300).map(|i| (i * 3) as u8).collect();
        // keep word alignment
        img.bytes.truncate(300);
        img.symbols = vec![
            Symbol {
                name: "__vectors".into(),
                addr: 0,
                size: 8,
                kind: SymbolKind::Fixed,
            },
            Symbol {
                name: "main".into(),
                addr: 8,
                size: 100,
                kind: SymbolKind::Function,
            },
            Symbol {
                name: "update_gyro".into(),
                addr: 108,
                size: 150,
                kind: SymbolKind::Function,
            },
            Symbol {
                name: "nav_vtable".into(),
                addr: 258,
                size: 42,
                kind: SymbolKind::Object,
            },
        ];
        img.text_end = 258;
        img.fn_ptr_locs = vec![258, 260];
        img
    }

    #[test]
    fn container_round_trip() {
        let img = sample_image();
        let text = MavrContainer::new(img.clone()).to_text();
        let parsed = MavrContainer::parse(&text).unwrap();
        assert_eq!(parsed.image, img);
    }

    #[test]
    fn container_is_valid_plain_hex() {
        let img = sample_image();
        let text = MavrContainer::new(img.clone()).to_text();
        let (base, bytes) = parse_ihex(&text).unwrap();
        assert_eq!(base, 0);
        assert_eq!(bytes, img.bytes);
    }

    #[test]
    fn missing_header_rejected() {
        let text = write_ihex(&[1, 2], 0);
        let err = MavrContainer::parse(&text).unwrap_err();
        assert!(matches!(err, ParseError::BadDirective { .. }));
    }

    #[test]
    fn malformed_symbol_rejected() {
        let text = ";MAVR 1 ATmega2560\n;SYM Q 0x0 0x2 foo\n:00000001FF\n";
        assert!(MavrContainer::parse(text).is_err());
        let text = ";MAVR 1 ATmega2560\n;SYM F zzz 0x2 foo\n:00000001FF\n";
        assert!(MavrContainer::parse(text).is_err());
    }

    #[test]
    fn unknown_device_rejected() {
        let text = ";MAVR 1 Z80\n:00000001FF\n";
        assert!(MavrContainer::parse(text).is_err());
    }

    #[test]
    fn inconsistent_image_rejected() {
        // Symbol extends beyond the carried bytes.
        let text = ";MAVR 1 ATmega2560\n;SYM F 0x0 0x100 foo\n:0100000055AA\n:00000001FF\n";
        assert!(MavrContainer::parse(text).is_err());
    }
}
