//! Property tests: Intel HEX and MAVR container round-trips, and parser
//! robustness against arbitrary input.

use avr_core::device::ATMEGA2560;
use avr_core::image::{FirmwareImage, Symbol, SymbolKind};
use hexfile::{parse_ihex, write_ihex, MavrContainer};
use proptest::prelude::*;

proptest! {
    #[test]
    fn ihex_round_trips(data in proptest::collection::vec(any::<u8>(), 0..4096),
                        base in 0u32..0x3_0000) {
        let text = write_ihex(&data, base);
        let (got_base, got) = parse_ihex(&text).unwrap();
        if data.is_empty() {
            prop_assert!(got.is_empty());
        } else {
            prop_assert_eq!(got_base, base);
            prop_assert_eq!(got, data);
        }
    }

    #[test]
    fn ihex_output_is_ascii_records(data in proptest::collection::vec(any::<u8>(), 1..256)) {
        let text = write_ihex(&data, 0);
        for line in text.lines() {
            prop_assert!(line.starts_with(':'));
            prop_assert!(line[1..].bytes().all(|b| b.is_ascii_hexdigit()));
            // Record length: 1 count + 2 addr + 1 type + payload + 1 checksum.
            prop_assert!(line.len() >= 11);
        }
        prop_assert!(text.ends_with(":00000001FF\n"));
    }

    #[test]
    fn parser_never_panics_on_noise(noise in proptest::collection::vec(any::<u8>(), 0..512)) {
        let text = String::from_utf8_lossy(&noise).into_owned();
        let _ = parse_ihex(&text); // must not panic
        let _ = MavrContainer::parse(&text); // must not panic
    }

    #[test]
    fn corrupting_one_hex_digit_is_detected(
        data in proptest::collection::vec(any::<u8>(), 16..64),
        pos in 0usize..200,
        delta in 1u8..15,
    ) {
        let text = write_ihex(&data, 0);
        let bytes = text.as_bytes();
        // Find a hex digit to corrupt (skip ':' and newlines).
        let candidates: Vec<usize> = bytes
            .iter()
            .enumerate()
            .filter(|(_, b)| b.is_ascii_hexdigit())
            .map(|(i, _)| i)
            .collect();
        let idx = candidates[pos % candidates.len()];
        let orig = (bytes[idx] as char).to_digit(16).unwrap() as u8;
        let new = (orig + delta) % 16;
        let mut corrupted = text.clone().into_bytes();
        corrupted[idx] = char::from_digit(u32::from(new), 16).unwrap() as u8;
        let corrupted = String::from_utf8(corrupted).unwrap();
        // Either the checksum rejects it, or the corruption hit a length /
        // address / checksum field and a structural error fires; silently
        // returning the original data is the one unacceptable outcome.
        if let Ok((_, parsed)) = parse_ihex(&corrupted) { prop_assert_ne!(parsed, data) }
    }

    #[test]
    fn container_round_trips(
        n_funcs in 1usize..20,
        sizes in proptest::collection::vec(1u32..40, 1..20),
        ptr_count in 0usize..4,
    ) {
        let n = n_funcs.min(sizes.len());
        let mut img = FirmwareImage::new(ATMEGA2560);
        let mut addr = 0u32;
        for (i, sz) in sizes.iter().take(n).enumerate() {
            let size = sz * 2;
            img.symbols.push(Symbol {
                name: format!("f{i}"),
                addr,
                size,
                kind: SymbolKind::Function,
            });
            addr += size;
        }
        img.text_end = addr;
        // A pointer table after text.
        img.symbols.push(Symbol {
            name: "tbl".into(),
            addr,
            size: 8,
            kind: SymbolKind::Object,
        });
        img.bytes = vec![0x5a; (addr + 8) as usize];
        for i in 0..ptr_count.min(4) {
            img.fn_ptr_locs.push(addr + (i as u32) * 2);
        }
        img.validate().unwrap();

        let text = MavrContainer::new(img.clone()).to_text();
        let parsed = MavrContainer::parse(&text).unwrap();
        prop_assert_eq!(parsed.image, img);
    }
}
