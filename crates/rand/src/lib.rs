//! Offline stand-in for the `rand` crate (0.9-style API).
//!
//! The build container for this repository has no crates.io access, so the
//! workspace vendors the *small* slice of `rand` it actually uses:
//! [`Rng::random`], [`Rng::random_range`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic for a given seed,
//! statistically solid for simulation work, and explicitly **not** a CSPRNG
//! (neither is the real `StdRng` contract for reproducible seeding).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG (the `rand` crate's
/// `StandardUniform` distribution, folded into a single trait).
pub trait Standard: Sized {
    /// Draw a uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::random_range`] accepts.
pub trait SampleRange<T> {
    /// Sample a value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching `rand`'s contract.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = u128::from(rng.next_u64()) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing random-value API, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of any [`Standard`] type (`f64` in `[0,1)`, full range
    /// for integers).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in `range` (half-open or inclusive).
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let v: f64 = Standard::sample(self);
        v < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, `rand`-style.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state words, for checkpointing.
        ///
        /// Together with [`StdRng::from_state`] this makes the generator
        /// snapshot-able: a restored generator continues the exact sequence
        /// the saved one would have produced.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from state words captured by [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v: u8 = rng.random_range(18..=25);
            assert!((18..=25).contains(&v));
            let w: usize = rng.random_range(0..3);
            assert!(w < 3);
            let s: i16 = rng.random_range(-2048i16..=2047);
            assert!((-2048..=2047).contains(&s));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn state_round_trip_continues_the_sequence() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..5 {
            let _: u64 = a.random();
        }
        let mut b = StdRng::from_state(a.state());
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_eq!(xs, ys, "restored generator must continue the sequence");
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_sensitive() {
        let base: Vec<usize> = (0..32).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        a.shuffle(&mut StdRng::seed_from_u64(1));
        b.shuffle(&mut StdRng::seed_from_u64(2));
        let mut sa = a.clone();
        sa.sort_unstable();
        assert_eq!(sa, base, "shuffle must be a permutation");
        assert_ne!(a, base, "32 elements virtually never shuffle to identity");
        assert_ne!(a, b, "different seeds give different orders");
    }
}
