//! Property tests: packet round-trips and parser robustness — the receive
//! path faces attacker-controlled bytes, so it must never panic and never
//! accept a corrupted frame.

use mavlink_lite::{msg, Packet, Parser};
use proptest::prelude::*;

proptest! {
    #[test]
    fn packet_round_trips(
        seq in any::<u8>(),
        sysid in any::<u8>(),
        compid in any::<u8>(),
        msgid in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..=255),
    ) {
        let p = Packet::new(seq, sysid, compid, msgid, payload).unwrap();
        let wire = p.encode();
        prop_assert_eq!(wire.len(), p.wire_len());
        let mut parser = Parser::new();
        let got = parser.push_all(&wire);
        prop_assert_eq!(got, vec![p]);
        prop_assert_eq!(parser.bad_checksums, 0);
    }

    #[test]
    fn parser_never_panics_on_noise(noise in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let mut parser = Parser::new();
        let _ = parser.push_all(&noise); // must not panic
    }

    #[test]
    fn single_byte_corruption_never_yields_wrong_packet(
        payload in proptest::collection::vec(any::<u8>(), 9..64),
        pos_seed in any::<usize>(),
        xor in 1u8..=255,
    ) {
        let p = Packet::new(1, 2, 3, msg::PARAM_SET_ID, payload).unwrap();
        let mut wire = p.encode();
        let pos = pos_seed % wire.len();
        wire[pos] ^= xor;
        let mut parser = Parser::new();
        let got = parser.push_all(&wire);
        // Corrupting any single byte must not produce the original packet;
        // producing a *different* checksum-valid packet from one frame is
        // only possible if the corruption hit a field and the checksum
        // collides — X25 guarantees it cannot for single-byte errors.
        prop_assert!(got.is_empty(), "corrupted frame at byte {pos} was accepted");
    }

    #[test]
    fn packet_found_after_arbitrary_magicless_prefix(
        prefix in proptest::collection::vec(any::<u8>().prop_filter("no magic", |b| *b != 0xfe), 0..128),
        payload in proptest::collection::vec(any::<u8>(), 9..32),
    ) {
        let p = Packet::new(0, 1, 1, msg::HEARTBEAT_ID, payload).unwrap();
        let mut stream = prefix;
        stream.extend(p.encode());
        let mut parser = Parser::new();
        let got = parser.push_all(&stream);
        prop_assert_eq!(got, vec![p]);
    }

    #[test]
    fn back_to_back_streams_parse_completely(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..48), 1..12),
    ) {
        let packets: Vec<Packet> = payloads
            .into_iter()
            .enumerate()
            .map(|(i, pl)| Packet::new(i as u8, 1, 1, 0, pl).unwrap())
            .collect();
        let mut wire = Vec::new();
        for p in &packets {
            wire.extend(p.encode());
        }
        let mut parser = Parser::new();
        let got = parser.push_all(&wire);
        prop_assert_eq!(got, packets);
    }

    #[test]
    fn typed_messages_survive_packetization(
        value in any::<f32>().prop_filter("finite", |f| f.is_finite()),
        name in proptest::collection::vec(0x20u8..0x7f, 0..16),
    ) {
        let ps = msg::ParamSet {
            param_value: value,
            target_system: 1,
            target_component: 1,
            param_id: name,
            param_type: 9,
        };
        let pkt = Packet::new(0, 255, 0, msg::PARAM_SET_ID, ps.to_payload()).unwrap();
        let mut parser = Parser::new();
        let got = parser.push_all(&pkt.encode());
        let back = msg::ParamSet::from_payload(got[0].msgid, &got[0].payload).unwrap();
        prop_assert_eq!(back.param_value, value);
        // Name round-trips zero-padded to 16.
        let mut padded = ps.param_id.clone();
        padded.resize(16, 0);
        prop_assert_eq!(back.param_id, padded);
    }
}
