//! Ground-station session model: the benign operator console and the
//! malicious ground station of the paper's threat model (Fig. 3).

use crate::history::History;
use crate::msg::{self, Attitude, Heartbeat, ParamSet, SysStatus};
use crate::packet::{Packet, Parser, HEADER_LEN, MAGIC};
use crate::ProtocolError;
use std::collections::BTreeMap;
use telemetry::{Counters, Telemetry, Value};

/// MAVLink system id conventionally used by ground stations.
pub const GCS_SYSID: u8 = 255;

/// A ground-station endpoint.
///
/// One instance models either the legitimate operator console or the
/// attacker's ground station — the paper's threat model assumes the attacker
/// "has access to a malicious ground station or has compromised a legitimate
/// ground station" (§IV-A). The only difference is which encode helpers are
/// used: the malicious encoders deliberately violate the length invariant
/// the (vulnerable) UAV fails to check.
///
/// Received traffic lands in bounded [`History`] rings (long campaigns
/// would otherwise grow memory without limit); lifetime totals survive in
/// each ring's counter and in [`GroundStation::counters`]. Sequence-number
/// discontinuities per sender sysid are tracked as a packet-loss estimate —
/// the number the fleet campaign report calls `seq_gap_bytes`.
#[derive(Debug, Clone)]
pub struct GroundStation {
    /// Our system id on the link.
    pub sysid: u8,
    /// Our component id.
    pub compid: u8,
    seq: u8,
    parser: Parser,
    /// The most recent checksum-valid packets received from the UAV.
    pub received: History<Packet>,
    /// Decoded HEARTBEATs, in arrival order (bounded ring).
    pub heartbeats: History<Heartbeat>,
    /// Decoded ATTITUDE telemetry, in arrival order (bounded ring).
    pub attitudes: History<Attitude>,
    /// Decoded SYS_STATUS telemetry, in arrival order (bounded ring).
    pub sys_status: History<SysStatus>,
    /// Count of packets this station has framed for transmission
    /// (well-formed and malicious alike).
    pub packets_framed: u64,
    /// Last sequence number seen per sender sysid.
    last_seq: BTreeMap<u8, u8>,
    /// Sequence-gap events per sender sysid (count of discontinuities).
    seq_gaps: BTreeMap<u8, u64>,
    /// Sum of missing packets implied by the gaps (mod-256 deltas).
    packets_lost: u64,
    /// Monotonic session counters (`gcs.packets`, `gcs.heartbeats`,
    /// `gcs.seq_gaps`, `gcs.packets_lost`) — the telemetry-layer view.
    pub counters: Counters,
    /// Optional flight-recorder handle; when attached, each detected
    /// sequence gap emits a `gcs.seq_gap` event.
    pub telemetry: Telemetry,
}

impl Default for GroundStation {
    fn default() -> Self {
        GroundStation::new()
    }
}

impl GroundStation {
    /// A ground station with the conventional GCS system id and the
    /// default scroll-back depth.
    pub fn new() -> Self {
        GroundStation::with_capacity(crate::history::DEFAULT_CAPACITY)
    }

    /// A ground station retaining at most `capacity` packets (and decoded
    /// messages) per ring — fleet campaigns run many stations with small
    /// rings.
    pub fn with_capacity(capacity: usize) -> Self {
        GroundStation {
            sysid: GCS_SYSID,
            compid: 0,
            seq: 0,
            parser: Parser::new(),
            received: History::with_capacity(capacity),
            heartbeats: History::with_capacity(capacity),
            attitudes: History::with_capacity(capacity),
            sys_status: History::with_capacity(capacity),
            packets_framed: 0,
            last_seq: BTreeMap::new(),
            seq_gaps: BTreeMap::new(),
            packets_lost: 0,
            counters: Counters::default(),
            telemetry: Telemetry::off(),
        }
    }

    fn next_seq(&mut self) -> u8 {
        let s = self.seq;
        self.seq = self.seq.wrapping_add(1);
        self.packets_framed += 1;
        s
    }

    /// Encode a HEARTBEAT from this ground station.
    pub fn heartbeat(&mut self) -> Vec<u8> {
        let h = Heartbeat {
            vehicle_type: 6, // GCS
            autopilot: 8,    // invalid/none
            base_mode: 0,
            custom_mode: 0,
            system_status: 4,
            mavlink_version: 3,
        };
        let seq = self.next_seq();
        Packet::new(
            seq,
            self.sysid,
            self.compid,
            msg::HEARTBEAT_ID,
            h.to_payload(),
        )
        .expect("heartbeat payload is fixed-size")
        .encode()
    }

    /// Encode a well-formed PARAM_SET.
    pub fn param_set(&mut self, name: &[u8], value: f32) -> Vec<u8> {
        let p = ParamSet {
            param_value: value,
            target_system: 1,
            target_component: 1,
            param_id: name.to_vec(),
            param_type: 9,
        };
        let seq = self.next_seq();
        Packet::new(
            seq,
            self.sysid,
            self.compid,
            msg::PARAM_SET_ID,
            p.to_payload(),
        )
        .expect("param_set payload is fixed-size")
        .encode()
    }

    /// Encode a COMMAND_LONG (e.g. arm/disarm, mode changes).
    pub fn command_long(&mut self, command: u16, params: [f32; 7]) -> Vec<u8> {
        let c = crate::msg::CommandLong {
            params,
            command,
            target_system: 1,
            target_component: 1,
            confirmation: 0,
        };
        let seq = self.next_seq();
        Packet::new(
            seq,
            self.sysid,
            self.compid,
            msg::COMMAND_LONG_ID,
            c.to_payload(),
        )
        .expect("command payload is fixed-size")
        .encode()
    }

    /// **Malicious**: a PARAM_SET-id packet with an arbitrary, oversized
    /// payload. A correct receiver rejects it for its length; the paper's
    /// vulnerable firmware (length check disabled, §IV-B) copies all of it
    /// into a fixed stack buffer.
    pub fn exploit_packet(&mut self, payload: &[u8]) -> Result<Vec<u8>, ProtocolError> {
        let seq = self.next_seq();
        Ok(Packet::new(
            seq,
            self.sysid,
            self.compid,
            msg::PARAM_SET_ID,
            payload.to_vec(),
        )?
        .encode())
    }

    /// **Malicious**: like [`GroundStation::exploit_packet`] but with a lying
    /// length field — the header claims `claimed_len` while carrying
    /// `payload.len()` bytes. Useful for probing parser robustness.
    pub fn malformed_packet(&mut self, payload: &[u8], claimed_len: u8) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 2);
        out.push(MAGIC);
        out.push(claimed_len);
        out.push(self.next_seq());
        out.push(self.sysid);
        out.push(self.compid);
        out.push(msg::PARAM_SET_ID);
        out.extend_from_slice(payload);
        let mut crc = crate::packet::crc_x25(&out[1..]);
        crc = crate::packet::crc_accumulate(crc, msg::crc_extra(msg::PARAM_SET_ID));
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Ingest bytes received from the UAV, decoding telemetry.
    pub fn ingest(&mut self, bytes: &[u8]) {
        for pkt in self.parser.push_all(bytes) {
            self.ingest_packet(pkt);
        }
    }

    /// Ingest one already-parsed packet (the [`crate::Router`] path, where
    /// framing happened on a per-link parser).
    pub fn ingest_packet(&mut self, pkt: Packet) {
        self.track_seq(pkt.sysid, pkt.seq);
        self.counters.add("gcs.packets", 1);
        match pkt.msgid {
            msg::HEARTBEAT_ID => {
                if let Ok(h) = Heartbeat::from_payload(pkt.msgid, &pkt.payload) {
                    self.counters.add("gcs.heartbeats", 1);
                    self.heartbeats.push(h);
                }
            }
            msg::ATTITUDE_ID => {
                if let Ok(a) = Attitude::from_payload(pkt.msgid, &pkt.payload) {
                    self.attitudes.push(a);
                }
            }
            msg::SYS_STATUS_ID => {
                if let Ok(s) = SysStatus::from_payload(pkt.msgid, &pkt.payload) {
                    self.sys_status.push(s);
                }
            }
            _ => {}
        }
        self.received.push(pkt);
    }

    /// Record `seq` for `sysid`, counting discontinuities. MAVLink
    /// sequence numbers increment mod 256 per sender, so any other delta
    /// means the link lost (or reordered) `delta - 1` packets.
    fn track_seq(&mut self, sysid: u8, seq: u8) {
        if let Some(&last) = self.last_seq.get(&sysid) {
            let delta = seq.wrapping_sub(last);
            if delta != 1 {
                let missing = u64::from(delta.wrapping_sub(1));
                *self.seq_gaps.entry(sysid).or_insert(0) += 1;
                self.packets_lost += missing;
                self.counters.add("gcs.seq_gaps", 1);
                self.counters.add("gcs.packets_lost", missing);
                self.telemetry.emit("gcs.seq_gap", None, || {
                    vec![
                        ("sysid", Value::U64(u64::from(sysid))),
                        ("expected", Value::U64(u64::from(last.wrapping_add(1)))),
                        ("got", Value::U64(u64::from(seq))),
                        ("missing", Value::U64(missing)),
                    ]
                });
            }
        }
        self.last_seq.insert(sysid, seq);
    }

    /// Sequence-discontinuity events seen from `sysid` so far.
    pub fn seq_gaps(&self, sysid: u8) -> u64 {
        self.seq_gaps.get(&sysid).copied().unwrap_or(0)
    }

    /// Total sequence-gap events across all sender sysids.
    pub fn seq_gaps_total(&self) -> u64 {
        self.seq_gaps.values().sum()
    }

    /// Estimated packets lost on the downlink, summed over all senders
    /// (mod-256 sequence deltas; reordering inflates this slightly).
    pub fn packets_lost(&self) -> u64 {
        self.packets_lost
    }

    /// Count of bytes that failed checksum so far — a rough "link garbage"
    /// indicator the operator console would surface.
    pub fn bad_checksums(&self) -> u64 {
        self.parser.bad_checksums
    }

    /// Count of checksum-valid packets decoded from the UAV so far.
    pub fn packets_parsed(&self) -> u64 {
        self.parser.packets_parsed
    }

    /// The operator's liveness view: does the most recent window of traffic
    /// contain at least `min_heartbeats` heartbeats? The stealthy attack's
    /// whole point (§IV-D) is to keep this true while the attack runs.
    pub fn link_alive(&self, window: usize, min_heartbeats: usize) -> bool {
        self.received
            .iter()
            .rev()
            .take(window)
            .filter(|p| p.msgid == msg::HEARTBEAT_ID)
            .count()
            >= min_heartbeats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_decoding() {
        let mut uav_side = GroundStation::new(); // reuse encoder side
        uav_side.sysid = 1;
        let hb = uav_side.heartbeat();
        let att = Packet::new(
            0,
            1,
            1,
            msg::ATTITUDE_ID,
            Attitude {
                time_boot_ms: 1,
                roll: 0.5,
                pitch: 0.0,
                yaw: 0.0,
                rollspeed: 0.0,
                pitchspeed: 0.0,
                yawspeed: 0.0,
            }
            .to_payload(),
        )
        .unwrap()
        .encode();

        let mut gcs = GroundStation::new();
        gcs.ingest(&hb);
        gcs.ingest(&att);
        assert_eq!(gcs.heartbeats.len(), 1);
        assert_eq!(gcs.attitudes.len(), 1);
        assert!((gcs.attitudes[0].roll - 0.5).abs() < 1e-6);
        assert_eq!(gcs.received.len(), 2);
    }

    #[test]
    fn sequence_numbers_increment() {
        let mut gcs = GroundStation::new();
        let a = gcs.heartbeat();
        let b = gcs.heartbeat();
        assert_eq!(a[2], 0);
        assert_eq!(b[2], 1);
    }

    #[test]
    fn exploit_packet_carries_oversized_payload() {
        let mut gcs = GroundStation::new();
        let payload = vec![0x41; 200];
        let wire = gcs.exploit_packet(&payload).unwrap();
        assert_eq!(wire[1], 200, "length field reflects real payload");
        assert_eq!(wire.len(), 6 + 200 + 2);
        // It still checks out as a valid packet to a spec parser.
        let mut p = Parser::new();
        let got = p.push_all(&wire);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload.len(), 200);
    }

    #[test]
    fn seq_gaps_counted_per_sysid() {
        let mut uav = GroundStation::new();
        uav.sysid = 1;
        let frames: Vec<Vec<u8>> = (0..6).map(|_| uav.heartbeat()).collect();
        let mut gcs = GroundStation::new();
        // Deliver seq 0, 1, then drop 2 and 3, then 4, 5: one gap of 2.
        for f in [&frames[0], &frames[1], &frames[4], &frames[5]] {
            gcs.ingest(f);
        }
        assert_eq!(gcs.seq_gaps(1), 1);
        assert_eq!(gcs.packets_lost(), 2);
        assert_eq!(gcs.seq_gaps(99), 0);
        assert_eq!(gcs.counters.get("gcs.seq_gaps"), 1);
        assert_eq!(gcs.counters.get("gcs.packets_lost"), 2);
        assert_eq!(gcs.counters.get("gcs.packets"), 4);
        // Wrap-around without a gap: 255 -> 0 is consecutive.
        let mut gcs2 = GroundStation::new();
        let mut a = Packet::new(255, 7, 1, 0, vec![0; 9]).unwrap().encode();
        a.extend(Packet::new(0, 7, 1, 0, vec![0; 9]).unwrap().encode());
        gcs2.ingest(&a);
        assert_eq!(gcs2.seq_gaps(7), 0);
        assert_eq!(gcs2.seq_gaps_total(), 0);
    }

    #[test]
    fn histories_are_bounded_with_exact_totals() {
        let mut uav = GroundStation::new();
        uav.sysid = 1;
        let mut gcs = GroundStation::with_capacity(4);
        for _ in 0..10 {
            let hb = uav.heartbeat();
            gcs.ingest(&hb);
        }
        assert_eq!(gcs.received.len(), 4, "ring bounded");
        assert_eq!(gcs.received.total(), 10, "lifetime total exact");
        assert_eq!(gcs.heartbeats.total(), 10);
        assert_eq!(gcs.counters.get("gcs.heartbeats"), 10);
        assert_eq!(gcs.packets_parsed(), 10);
        assert!(gcs.link_alive(4, 4));
    }

    #[test]
    fn seq_gap_emits_telemetry_event() {
        use telemetry::{RingRecorder, Telemetry};
        let mut uav = GroundStation::new();
        uav.sysid = 1;
        let frames: Vec<Vec<u8>> = (0..3).map(|_| uav.heartbeat()).collect();
        let mut gcs = GroundStation::new();
        gcs.telemetry = Telemetry::new(RingRecorder::new(8));
        gcs.ingest(&frames[0]);
        gcs.ingest(&frames[2]);
        let missing = gcs
            .telemetry
            .with_recorder::<RingRecorder, _>(|r| {
                let ev = r.events().find(|e| e.kind == "gcs.seq_gap").cloned();
                ev.and_then(|e| match e.field("missing") {
                    Some(telemetry::Value::U64(m)) => Some(*m),
                    _ => None,
                })
            })
            .unwrap();
        assert_eq!(missing, Some(1));
    }

    #[test]
    fn link_alive_window() {
        let mut gcs = GroundStation::new();
        let mut uav = GroundStation::new();
        uav.sysid = 1;
        for _ in 0..3 {
            let hb = uav.heartbeat();
            gcs.ingest(&hb);
        }
        assert!(gcs.link_alive(10, 3));
        assert!(!gcs.link_alive(10, 4));
        assert!(gcs.link_alive(1, 1));
    }
}
