//! Ground-station session model: the benign operator console and the
//! malicious ground station of the paper's threat model (Fig. 3).

use crate::msg::{self, Attitude, Heartbeat, ParamSet, SysStatus};
use crate::packet::{Packet, Parser, HEADER_LEN, MAGIC};
use crate::ProtocolError;

/// MAVLink system id conventionally used by ground stations.
pub const GCS_SYSID: u8 = 255;

/// A ground-station endpoint.
///
/// One instance models either the legitimate operator console or the
/// attacker's ground station — the paper's threat model assumes the attacker
/// "has access to a malicious ground station or has compromised a legitimate
/// ground station" (§IV-A). The only difference is which encode helpers are
/// used: the malicious encoders deliberately violate the length invariant
/// the (vulnerable) UAV fails to check.
#[derive(Debug, Clone)]
pub struct GroundStation {
    /// Our system id on the link.
    pub sysid: u8,
    /// Our component id.
    pub compid: u8,
    seq: u8,
    parser: Parser,
    /// Every checksum-valid packet received from the UAV.
    pub received: Vec<Packet>,
    /// Decoded HEARTBEATs, in arrival order.
    pub heartbeats: Vec<Heartbeat>,
    /// Decoded ATTITUDE telemetry, in arrival order.
    pub attitudes: Vec<Attitude>,
    /// Decoded SYS_STATUS telemetry, in arrival order.
    pub sys_status: Vec<SysStatus>,
    /// Count of packets this station has framed for transmission
    /// (well-formed and malicious alike).
    pub packets_framed: u64,
}

impl Default for GroundStation {
    fn default() -> Self {
        GroundStation::new()
    }
}

impl GroundStation {
    /// A ground station with the conventional GCS system id.
    pub fn new() -> Self {
        GroundStation {
            sysid: GCS_SYSID,
            compid: 0,
            seq: 0,
            parser: Parser::new(),
            received: Vec::new(),
            heartbeats: Vec::new(),
            attitudes: Vec::new(),
            sys_status: Vec::new(),
            packets_framed: 0,
        }
    }

    fn next_seq(&mut self) -> u8 {
        let s = self.seq;
        self.seq = self.seq.wrapping_add(1);
        self.packets_framed += 1;
        s
    }

    /// Encode a HEARTBEAT from this ground station.
    pub fn heartbeat(&mut self) -> Vec<u8> {
        let h = Heartbeat {
            vehicle_type: 6, // GCS
            autopilot: 8,    // invalid/none
            base_mode: 0,
            custom_mode: 0,
            system_status: 4,
            mavlink_version: 3,
        };
        let seq = self.next_seq();
        Packet::new(
            seq,
            self.sysid,
            self.compid,
            msg::HEARTBEAT_ID,
            h.to_payload(),
        )
        .expect("heartbeat payload is fixed-size")
        .encode()
    }

    /// Encode a well-formed PARAM_SET.
    pub fn param_set(&mut self, name: &[u8], value: f32) -> Vec<u8> {
        let p = ParamSet {
            param_value: value,
            target_system: 1,
            target_component: 1,
            param_id: name.to_vec(),
            param_type: 9,
        };
        let seq = self.next_seq();
        Packet::new(
            seq,
            self.sysid,
            self.compid,
            msg::PARAM_SET_ID,
            p.to_payload(),
        )
        .expect("param_set payload is fixed-size")
        .encode()
    }

    /// Encode a COMMAND_LONG (e.g. arm/disarm, mode changes).
    pub fn command_long(&mut self, command: u16, params: [f32; 7]) -> Vec<u8> {
        let c = crate::msg::CommandLong {
            params,
            command,
            target_system: 1,
            target_component: 1,
            confirmation: 0,
        };
        let seq = self.next_seq();
        Packet::new(
            seq,
            self.sysid,
            self.compid,
            msg::COMMAND_LONG_ID,
            c.to_payload(),
        )
        .expect("command payload is fixed-size")
        .encode()
    }

    /// **Malicious**: a PARAM_SET-id packet with an arbitrary, oversized
    /// payload. A correct receiver rejects it for its length; the paper's
    /// vulnerable firmware (length check disabled, §IV-B) copies all of it
    /// into a fixed stack buffer.
    pub fn exploit_packet(&mut self, payload: &[u8]) -> Result<Vec<u8>, ProtocolError> {
        let seq = self.next_seq();
        Ok(Packet::new(
            seq,
            self.sysid,
            self.compid,
            msg::PARAM_SET_ID,
            payload.to_vec(),
        )?
        .encode())
    }

    /// **Malicious**: like [`GroundStation::exploit_packet`] but with a lying
    /// length field — the header claims `claimed_len` while carrying
    /// `payload.len()` bytes. Useful for probing parser robustness.
    pub fn malformed_packet(&mut self, payload: &[u8], claimed_len: u8) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 2);
        out.push(MAGIC);
        out.push(claimed_len);
        out.push(self.next_seq());
        out.push(self.sysid);
        out.push(self.compid);
        out.push(msg::PARAM_SET_ID);
        out.extend_from_slice(payload);
        let mut crc = crate::packet::crc_x25(&out[1..]);
        crc = crate::packet::crc_accumulate(crc, msg::crc_extra(msg::PARAM_SET_ID));
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Ingest bytes received from the UAV, decoding telemetry.
    pub fn ingest(&mut self, bytes: &[u8]) {
        for pkt in self.parser.push_all(bytes) {
            match pkt.msgid {
                msg::HEARTBEAT_ID => {
                    if let Ok(h) = Heartbeat::from_payload(pkt.msgid, &pkt.payload) {
                        self.heartbeats.push(h);
                    }
                }
                msg::ATTITUDE_ID => {
                    if let Ok(a) = Attitude::from_payload(pkt.msgid, &pkt.payload) {
                        self.attitudes.push(a);
                    }
                }
                msg::SYS_STATUS_ID => {
                    if let Ok(s) = SysStatus::from_payload(pkt.msgid, &pkt.payload) {
                        self.sys_status.push(s);
                    }
                }
                _ => {}
            }
            self.received.push(pkt);
        }
    }

    /// Count of bytes that failed checksum so far — a rough "link garbage"
    /// indicator the operator console would surface.
    pub fn bad_checksums(&self) -> u64 {
        self.parser.bad_checksums
    }

    /// Count of checksum-valid packets decoded from the UAV so far.
    pub fn packets_parsed(&self) -> u64 {
        self.parser.packets_parsed
    }

    /// The operator's liveness view: does the most recent window of traffic
    /// contain at least `min_heartbeats` heartbeats? The stealthy attack's
    /// whole point (§IV-D) is to keep this true while the attack runs.
    pub fn link_alive(&self, window: usize, min_heartbeats: usize) -> bool {
        let start = self.received.len().saturating_sub(window);
        self.received[start..]
            .iter()
            .filter(|p| p.msgid == msg::HEARTBEAT_ID)
            .count()
            >= min_heartbeats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_decoding() {
        let mut uav_side = GroundStation::new(); // reuse encoder side
        uav_side.sysid = 1;
        let hb = uav_side.heartbeat();
        let att = Packet::new(
            0,
            1,
            1,
            msg::ATTITUDE_ID,
            Attitude {
                time_boot_ms: 1,
                roll: 0.5,
                pitch: 0.0,
                yaw: 0.0,
                rollspeed: 0.0,
                pitchspeed: 0.0,
                yawspeed: 0.0,
            }
            .to_payload(),
        )
        .unwrap()
        .encode();

        let mut gcs = GroundStation::new();
        gcs.ingest(&hb);
        gcs.ingest(&att);
        assert_eq!(gcs.heartbeats.len(), 1);
        assert_eq!(gcs.attitudes.len(), 1);
        assert!((gcs.attitudes[0].roll - 0.5).abs() < 1e-6);
        assert_eq!(gcs.received.len(), 2);
    }

    #[test]
    fn sequence_numbers_increment() {
        let mut gcs = GroundStation::new();
        let a = gcs.heartbeat();
        let b = gcs.heartbeat();
        assert_eq!(a[2], 0);
        assert_eq!(b[2], 1);
    }

    #[test]
    fn exploit_packet_carries_oversized_payload() {
        let mut gcs = GroundStation::new();
        let payload = vec![0x41; 200];
        let wire = gcs.exploit_packet(&payload).unwrap();
        assert_eq!(wire[1], 200, "length field reflects real payload");
        assert_eq!(wire.len(), 6 + 200 + 2);
        // It still checks out as a valid packet to a spec parser.
        let mut p = Parser::new();
        let got = p.push_all(&wire);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload.len(), 200);
    }

    #[test]
    fn link_alive_window() {
        let mut gcs = GroundStation::new();
        let mut uav = GroundStation::new();
        uav.sysid = 1;
        for _ in 0..3 {
            let hb = uav.heartbeat();
            gcs.ingest(&hb);
        }
        assert!(gcs.link_alive(10, 3));
        assert!(!gcs.link_alive(10, 4));
        assert!(gcs.link_alive(1, 1));
    }
}
