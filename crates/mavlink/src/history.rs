//! A bounded, ring-buffered telemetry history.
//!
//! Ground-station sessions used to accumulate every packet and decoded
//! message into unbounded `Vec`s — fine for one board over a few million
//! cycles, fatal for fleet campaigns that run hundreds of boards for
//! billions of cycles. [`History`] keeps the most recent `capacity` items
//! (the operator's scroll-back) while counting the lifetime total, so
//! rates and totals stay exact even after old items fall off the front.

use std::collections::VecDeque;
use std::ops::Index;

/// Default scroll-back depth for a ground-station session.
pub const DEFAULT_CAPACITY: usize = 4096;

/// A fixed-capacity ring of the most recent items plus a lifetime counter.
///
/// The read API mirrors the slice of `Vec` the rest of the workspace uses
/// (`len`, `iter`, `last`, indexing), so swapping it in is transparent to
/// sessions that never exceed the capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct History<T> {
    items: VecDeque<T>,
    capacity: usize,
    total: u64,
}

impl<T> Default for History<T> {
    fn default() -> Self {
        History::with_capacity(DEFAULT_CAPACITY)
    }
}

impl<T> History<T> {
    /// A ring retaining the latest `capacity` items (at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        History {
            items: VecDeque::with_capacity(capacity.min(DEFAULT_CAPACITY)),
            capacity,
            total: 0,
        }
    }

    /// Append an item, evicting the oldest once at capacity.
    pub fn push(&mut self, item: T) {
        if self.items.len() == self.capacity {
            self.items.pop_front();
        }
        self.items.push_back(item);
        self.total += 1;
    }

    /// Number of items currently retained.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Lifetime count of items pushed, including evicted ones.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Items that fell off the front of the ring.
    pub fn evicted(&self) -> u64 {
        self.total - self.items.len() as u64
    }

    /// Maximum number of retained items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterate retained items, oldest first.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = &T> + ExactSizeIterator {
        self.items.iter()
    }

    /// The most recent item.
    pub fn last(&self) -> Option<&T> {
        self.items.back()
    }

    /// Retained item by position (0 = oldest retained).
    pub fn get(&self, idx: usize) -> Option<&T> {
        self.items.get(idx)
    }
}

impl<T> Index<usize> for History<T> {
    type Output = T;
    fn index(&self, idx: usize) -> &T {
        &self.items[idx]
    }
}

impl<'a, T> IntoIterator for &'a History<T> {
    type Item = &'a T;
    type IntoIter = std::collections::vec_deque::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_with_exact_totals() {
        let mut h: History<u32> = History::with_capacity(3);
        for i in 0..10 {
            h.push(i);
        }
        assert_eq!(h.len(), 3);
        assert_eq!(h.total(), 10);
        assert_eq!(h.evicted(), 7);
        assert_eq!(h.iter().copied().collect::<Vec<_>>(), vec![7, 8, 9]);
        assert_eq!(h.last(), Some(&9));
        assert_eq!(h[0], 7);
        assert_eq!(h.get(3), None);
    }

    #[test]
    fn behaves_like_vec_below_capacity() {
        let mut h: History<u8> = History::default();
        assert!(h.is_empty());
        h.push(1);
        h.push(2);
        assert_eq!(h.len(), 2);
        assert_eq!(h.total(), 2);
        assert_eq!(h.evicted(), 0);
        assert_eq!(h.iter().next_back(), Some(&2));
        assert_eq!((&h).into_iter().count(), 2);
    }

    #[test]
    fn eviction_is_strictly_fifo_and_totals_are_lifetime_exact() {
        let mut h: History<u64> = History::with_capacity(4);
        for n in 0..100u64 {
            h.push(n);
            // The retained window is exactly the trailing `min(n+1, cap)`
            // pushes, oldest first — eviction order is strictly FIFO.
            let start = (n + 1).saturating_sub(4);
            let expect: Vec<u64> = (start..=n).collect();
            assert_eq!(h.iter().copied().collect::<Vec<_>>(), expect);
            // Lifetime invariants hold after every push.
            assert_eq!(h.total(), n + 1);
            assert_eq!(h.total(), h.evicted() + h.len() as u64);
            assert_eq!(h.last(), Some(&n));
        }
        // Oldest-to-newest and newest-to-oldest traversals agree.
        let fwd: Vec<u64> = h.iter().copied().collect();
        let mut rev: Vec<u64> = h.iter().rev().copied().collect();
        rev.reverse();
        assert_eq!(fwd, rev);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut h: History<u8> = History::with_capacity(0);
        h.push(1);
        h.push(2);
        assert_eq!(h.capacity(), 1);
        assert_eq!(h.iter().copied().collect::<Vec<_>>(), vec![2]);
    }
}
