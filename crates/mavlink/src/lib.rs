//! A MAVLink-style protocol implementation (the paper's Fig. 2).
//!
//! MAVLink is the byte-stream protocol between a small UAV and its ground
//! station (§II-C). A packet is a 6-byte header (magic, payload length,
//! sequence number, sender system id, sender component id, message id), a
//! payload of up to 255 bytes, and a 2-byte X25 checksum. The paper notes a
//! minimum payload of 9 bytes (a HEARTBEAT) for a minimum packet length of
//! 17 bytes.
//!
//! The crate provides:
//!
//! * [`Packet`] encode/decode and the byte-at-a-time [`Parser`] state
//!   machine (the same structure the synthetic firmware implements in AVR
//!   instructions),
//! * typed message codecs in [`msg`] (HEARTBEAT, ATTITUDE, PARAM_SET, …),
//! * a [`GroundStation`] session model, including the *malicious* ground
//!   station of the paper's threat model, which emits oversized packets
//!   that a length-check-disabled receiver will copy past its buffer,
//! * a deterministic [`LossyChannel`] link model (per-byte drop / corrupt
//!   / duplicate / delay from a seeded RNG) and a [`Router`] that
//!   multiplexes many per-board links into one operator console — the
//!   substrate of fleet campaigns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod ground_station;
pub mod history;
pub mod msg;
mod packet;
pub mod router;

pub use channel::{ChannelStats, LossConfig, LossyChannel};
pub use ground_station::GroundStation;
pub use history::History;
pub use packet::{crc_x25, Packet, Parser, MAGIC, MAX_PAYLOAD, MIN_PAYLOAD};
pub use router::{Router, RouterTotals};

/// Errors from decoding packets or payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// Payload longer than the 255-byte maximum.
    PayloadTooLong {
        /// Actual length.
        len: usize,
    },
    /// Checksum mismatch on a received packet.
    BadChecksum {
        /// Checksum computed over the received bytes.
        computed: u16,
        /// Checksum carried by the packet.
        received: u16,
    },
    /// A typed message decoder was handed the wrong message id.
    WrongMessageId {
        /// Expected id.
        expected: u8,
        /// Actual id.
        actual: u8,
    },
    /// A typed message decoder was handed a payload of the wrong size.
    BadPayloadLength {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::PayloadTooLong { len } => write!(f, "payload too long: {len} bytes"),
            ProtocolError::BadChecksum { computed, received } => write!(
                f,
                "checksum mismatch: computed {computed:#06x}, received {received:#06x}"
            ),
            ProtocolError::WrongMessageId { expected, actual } => {
                write!(f, "wrong message id: expected {expected}, got {actual}")
            }
            ProtocolError::BadPayloadLength { expected, actual } => {
                write!(f, "bad payload length: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}
