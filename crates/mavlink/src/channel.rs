//! Deterministic lossy-link channel model.
//!
//! The paper evaluates MAVR over a perfect serial cable; real UAV radios
//! (3DR telemetry, XBee) drop, corrupt, duplicate and delay bytes. A
//! [`LossyChannel`] sits between an encoder and a [`crate::Parser`] and
//! applies per-byte impairments drawn from a **seeded** RNG, so an entire
//! fleet campaign is reproducible from its seed: the same
//! `(LossConfig, input byte stream)` pair always yields the same output
//! byte stream, independent of how the input is chunked across
//! [`LossyChannel::transmit`] calls.
//!
//! Impairments, applied per input byte in a fixed order:
//!
//! 1. **drop** — the byte vanishes;
//! 2. **corrupt** — the byte is XORed with a random non-zero mask (so a
//!    corrupted byte never equals the original);
//! 3. **duplicate** — the byte is emitted twice back-to-back;
//! 4. **delay** — the byte slips up to `max_delay` positions later in the
//!    stream, reordering it behind subsequent bytes.
//!
//! A config with all probabilities at zero is recognized and bypasses the
//! RNG entirely: the channel is then a transparent, allocation-only move
//! of the input — the property `examples/ground_station.rs` relies on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Impairment probabilities and the campaign seed for one link direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossConfig {
    /// Per-byte probability the byte is dropped.
    pub drop: f64,
    /// Per-byte probability the byte is corrupted (XOR non-zero mask).
    pub corrupt: f64,
    /// Per-byte probability the byte is duplicated.
    pub duplicate: f64,
    /// Per-byte probability the byte is delayed behind later bytes.
    pub delay: f64,
    /// Maximum positions a delayed byte can slip (≥ 1 when `delay > 0`).
    pub max_delay: usize,
    /// RNG seed; every impairment decision derives from it.
    pub seed: u64,
}

impl Default for LossConfig {
    fn default() -> Self {
        LossConfig::lossless()
    }
}

impl LossConfig {
    /// A perfect link: the channel passes bytes through untouched.
    pub fn lossless() -> Self {
        LossConfig {
            drop: 0.0,
            corrupt: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            max_delay: 0,
            seed: 0,
        }
    }

    /// A symmetric impairment: drop, corrupt and duplicate each with
    /// probability `p` (no reordering), seeded with `seed`.
    pub fn uniform(p: f64, seed: u64) -> Self {
        LossConfig {
            drop: p,
            corrupt: p,
            duplicate: p,
            delay: 0.0,
            max_delay: 0,
            seed,
        }
    }

    /// Replace the seed (campaigns derive a distinct per-board,
    /// per-direction seed from the campaign seed).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether every impairment probability is zero.
    pub fn is_lossless(&self) -> bool {
        self.drop <= 0.0 && self.corrupt <= 0.0 && self.duplicate <= 0.0 && self.delay <= 0.0
    }
}

/// Byte-level accounting for one channel instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Bytes offered to the channel.
    pub bytes_in: u64,
    /// Bytes the channel emitted (after drops and duplicates).
    pub bytes_out: u64,
    /// Bytes dropped.
    pub dropped: u64,
    /// Bytes corrupted.
    pub corrupted: u64,
    /// Bytes duplicated.
    pub duplicated: u64,
    /// Bytes delayed past their slot.
    pub delayed: u64,
}

/// One direction of a lossy serial link.
#[derive(Debug, Clone)]
pub struct LossyChannel {
    cfg: LossConfig,
    rng: StdRng,
    /// Delayed bytes keyed by `(release_index, insertion_seq)`, so bytes
    /// scheduled for the same slot come out in insertion order.
    pending: BTreeMap<(u64, u64), u8>,
    index: u64,
    insertions: u64,
    /// Running byte accounting.
    pub stats: ChannelStats,
}

impl LossyChannel {
    /// A channel applying `cfg`, with its RNG seeded from `cfg.seed`.
    pub fn new(cfg: LossConfig) -> Self {
        LossyChannel {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            pending: BTreeMap::new(),
            index: 0,
            insertions: 0,
            stats: ChannelStats::default(),
        }
    }

    /// A transparent channel (zero loss).
    pub fn perfect() -> Self {
        LossyChannel::new(LossConfig::lossless())
    }

    /// The configuration this channel was built with.
    pub fn config(&self) -> &LossConfig {
        &self.cfg
    }

    /// Push `bytes` through the channel, returning what the far end sees.
    ///
    /// Chunking is irrelevant: transmitting a stream one byte at a time or
    /// all at once yields the same concatenated output (delayed bytes are
    /// released once enough later bytes have passed; call
    /// [`LossyChannel::flush`] to drain stragglers at end of stream).
    pub fn transmit(&mut self, bytes: &[u8]) -> Vec<u8> {
        self.stats.bytes_in += bytes.len() as u64;
        if self.cfg.is_lossless() && self.pending.is_empty() {
            self.index += bytes.len() as u64;
            self.stats.bytes_out += bytes.len() as u64;
            return bytes.to_vec();
        }
        let mut out = Vec::with_capacity(bytes.len());
        for &b in bytes {
            self.release_due(&mut out);
            self.index += 1;
            if self.cfg.drop > 0.0 && self.rng.random_bool(self.cfg.drop) {
                self.stats.dropped += 1;
                continue;
            }
            let mut b = b;
            if self.cfg.corrupt > 0.0 && self.rng.random_bool(self.cfg.corrupt) {
                b ^= self.rng.random_range(1..=255u8);
                self.stats.corrupted += 1;
            }
            let copies = if self.cfg.duplicate > 0.0 && self.rng.random_bool(self.cfg.duplicate) {
                self.stats.duplicated += 1;
                2
            } else {
                1
            };
            for _ in 0..copies {
                if self.cfg.delay > 0.0 && self.rng.random_bool(self.cfg.delay) {
                    let slip = self.rng.random_range(1..=self.cfg.max_delay.max(1)) as u64;
                    self.pending.insert((self.index + slip, self.insertions), b);
                    self.insertions += 1;
                    self.stats.delayed += 1;
                } else {
                    out.push(b);
                }
            }
        }
        self.release_due(&mut out);
        self.stats.bytes_out += out.len() as u64;
        out
    }

    /// Emit every still-pending delayed byte (end of stream / link idle).
    pub fn flush(&mut self) -> Vec<u8> {
        let mut out: Vec<u8> = Vec::with_capacity(self.pending.len());
        for (_, b) in std::mem::take(&mut self.pending) {
            out.push(b);
        }
        self.stats.bytes_out += out.len() as u64;
        out
    }

    /// Bytes currently held back by the delay model.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    fn release_due(&mut self, out: &mut Vec<u8>) {
        while let Some((&key @ (release, _), _)) = self.pending.iter().next() {
            if release > self.index {
                break;
            }
            out.push(self.pending.remove(&key).expect("key just observed"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, Parser};

    fn frames(n: u8) -> Vec<u8> {
        let mut wire = Vec::new();
        for i in 0..n {
            wire.extend(Packet::new(i, 1, 1, 0, vec![i; 9]).unwrap().encode());
        }
        wire
    }

    #[test]
    fn lossless_channel_is_transparent() {
        let wire = frames(8);
        let mut ch = LossyChannel::perfect();
        assert_eq!(ch.transmit(&wire), wire);
        assert_eq!(ch.flush(), vec![]);
        assert_eq!(ch.stats.bytes_in, wire.len() as u64);
        assert_eq!(ch.stats.bytes_out, wire.len() as u64);
        assert_eq!(
            ch.stats.dropped + ch.stats.corrupted + ch.stats.duplicated,
            0
        );
    }

    #[test]
    fn deterministic_per_seed_and_chunking_invariant() {
        let wire = frames(20);
        let cfg = LossConfig {
            drop: 0.02,
            corrupt: 0.02,
            duplicate: 0.02,
            delay: 0.05,
            max_delay: 9,
            seed: 77,
        };
        let whole = {
            let mut ch = LossyChannel::new(cfg);
            let mut out = ch.transmit(&wire);
            out.extend(ch.flush());
            out
        };
        let byte_at_a_time = {
            let mut ch = LossyChannel::new(cfg);
            let mut out = Vec::new();
            for &b in &wire {
                out.extend(ch.transmit(&[b]));
            }
            out.extend(ch.flush());
            out
        };
        assert_eq!(whole, byte_at_a_time, "chunking must not change the stream");
        let again = {
            let mut ch = LossyChannel::new(cfg);
            let mut out = ch.transmit(&wire);
            out.extend(ch.flush());
            out
        };
        assert_eq!(whole, again, "same seed, same stream");
        let other_seed = {
            let mut ch = LossyChannel::new(cfg.with_seed(78));
            let mut out = ch.transmit(&wire);
            out.extend(ch.flush());
            out
        };
        assert_ne!(whole, other_seed, "different seed, different stream");
    }

    #[test]
    fn parser_survives_heavy_loss_and_stays_synchronized() {
        // Brutal link: ~19% of bytes impaired, so virtually every 17-byte
        // frame is touched. The parser must neither fabricate packets nor
        // lose sync permanently.
        let wire = frames(60);
        let mut ch = LossyChannel::new(LossConfig {
            drop: 0.05,
            corrupt: 0.05,
            duplicate: 0.05,
            delay: 0.05,
            max_delay: 17,
            seed: 3,
        });
        let mut lossy = ch.transmit(&wire);
        lossy.extend(ch.flush());
        let mut parser = Parser::new();
        let got = parser.push_all(&lossy);
        // Every parsed packet is one the sender framed — loss never
        // fabricates traffic (the CRC catches mangled frames).
        for p in &got {
            assert_eq!(p.payload, vec![p.seq; 9], "packet {} mangled", p.seq);
        }
        // After the lossy burst the parser still accepts clean traffic: a
        // quiet gap long enough to drain any half-open bogus frame
        // (255-byte max payload + CRC), then one clean packet.
        let clean = Packet::new(99, 1, 1, 0, vec![9; 9]).unwrap();
        let mut tail = vec![0u8; 263];
        tail.extend(clean.encode());
        let after = parser.push_all(&tail);
        assert_eq!(after, vec![clean], "parser resynchronized");
    }

    #[test]
    fn moderate_loss_lets_most_frames_through() {
        // The acceptance-point config (1% per impairment): roughly half of
        // all 17-byte frames traverse untouched.
        let wire = frames(60);
        let mut ch = LossyChannel::new(LossConfig {
            drop: 0.01,
            corrupt: 0.01,
            duplicate: 0.01,
            delay: 0.01,
            max_delay: 9,
            seed: 3,
        });
        let mut lossy = ch.transmit(&wire);
        lossy.extend(ch.flush());
        let mut parser = Parser::new();
        let got = parser.push_all(&lossy);
        assert!(
            got.len() > 15,
            "only {} of 60 frames survived 1% loss",
            got.len()
        );
        assert!(got.len() < 60, "a 1%-lossy link cannot be perfect");
    }

    #[test]
    fn corruption_is_never_identity_and_stats_add_up() {
        let wire = frames(40);
        let mut ch = LossyChannel::new(LossConfig {
            drop: 0.1,
            corrupt: 0.0,
            duplicate: 0.1,
            delay: 0.0,
            max_delay: 0,
            seed: 5,
        });
        let mut out = ch.transmit(&wire);
        out.extend(ch.flush());
        assert_eq!(
            out.len() as u64,
            ch.stats.bytes_in - ch.stats.dropped + ch.stats.duplicated
        );
        assert!(ch.stats.dropped > 0 && ch.stats.duplicated > 0);
    }
}
