//! Typed message codecs for the MAVLink subset the autopilot speaks.

use crate::ProtocolError;

/// HEARTBEAT message id.
pub const HEARTBEAT_ID: u8 = 0;
/// PARAM_SET message id.
pub const PARAM_SET_ID: u8 = 23;
/// ATTITUDE message id.
pub const ATTITUDE_ID: u8 = 30;
/// RAW_IMU message id.
pub const RAW_IMU_ID: u8 = 27;
/// COMMAND_LONG message id.
pub const COMMAND_LONG_ID: u8 = 76;
/// SYS_STATUS message id.
pub const SYS_STATUS_ID: u8 = 1;

/// Per-message `crc_extra` seed byte (MAVLink v1 values for the real
/// messages; 0 for ids we don't know).
pub fn crc_extra(msgid: u8) -> u8 {
    match msgid {
        HEARTBEAT_ID => 50,
        SYS_STATUS_ID => 124,
        PARAM_SET_ID => 168,
        RAW_IMU_ID => 144,
        ATTITUDE_ID => 39,
        COMMAND_LONG_ID => 152,
        _ => 0,
    }
}

fn check(
    msgid: u8,
    expected_id: u8,
    payload: &[u8],
    expected_len: usize,
) -> Result<(), ProtocolError> {
    if msgid != expected_id {
        return Err(ProtocolError::WrongMessageId {
            expected: expected_id,
            actual: msgid,
        });
    }
    if payload.len() != expected_len {
        return Err(ProtocolError::BadPayloadLength {
            expected: expected_len,
            actual: payload.len(),
        });
    }
    Ok(())
}

/// HEARTBEAT — 9-byte payload, the paper's minimum-size message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Heartbeat {
    /// Vehicle type (1 = fixed wing, 2 = quadrotor, 10 = ground rover).
    pub vehicle_type: u8,
    /// Autopilot type (3 = ArduPilotMega).
    pub autopilot: u8,
    /// Base mode bit field.
    pub base_mode: u8,
    /// Autopilot-specific mode.
    pub custom_mode: u32,
    /// System status (3 = standby, 4 = active).
    pub system_status: u8,
    /// Protocol version.
    pub mavlink_version: u8,
}

impl Heartbeat {
    /// Payload size on the wire.
    pub const LEN: usize = 9;

    /// Encode to the 9-byte wire payload (custom_mode first, as MAVLink
    /// sorts fields by size).
    pub fn to_payload(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(Self::LEN);
        p.extend_from_slice(&self.custom_mode.to_le_bytes());
        p.push(self.vehicle_type);
        p.push(self.autopilot);
        p.push(self.base_mode);
        p.push(self.system_status);
        p.push(self.mavlink_version);
        p
    }

    /// Decode from a packet payload.
    pub fn from_payload(msgid: u8, payload: &[u8]) -> Result<Self, ProtocolError> {
        check(msgid, HEARTBEAT_ID, payload, Self::LEN)?;
        Ok(Heartbeat {
            custom_mode: u32::from_le_bytes(payload[0..4].try_into().unwrap()),
            vehicle_type: payload[4],
            autopilot: payload[5],
            base_mode: payload[6],
            system_status: payload[7],
            mavlink_version: payload[8],
        })
    }
}

/// ATTITUDE — roll/pitch/yaw telemetry the UAV streams to the ground
/// station; the values come from the gyroscope state the paper's attack V1
/// overwrites.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Attitude {
    /// Milliseconds since boot.
    pub time_boot_ms: u32,
    /// Roll (rad).
    pub roll: f32,
    /// Pitch (rad).
    pub pitch: f32,
    /// Yaw (rad).
    pub yaw: f32,
    /// Roll rate (rad/s).
    pub rollspeed: f32,
    /// Pitch rate (rad/s).
    pub pitchspeed: f32,
    /// Yaw rate (rad/s).
    pub yawspeed: f32,
}

impl Attitude {
    /// Payload size on the wire.
    pub const LEN: usize = 28;

    /// Encode to the 28-byte wire payload.
    pub fn to_payload(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(Self::LEN);
        p.extend_from_slice(&self.time_boot_ms.to_le_bytes());
        for v in [
            self.roll,
            self.pitch,
            self.yaw,
            self.rollspeed,
            self.pitchspeed,
            self.yawspeed,
        ] {
            p.extend_from_slice(&v.to_le_bytes());
        }
        p
    }

    /// Decode from a packet payload.
    pub fn from_payload(msgid: u8, payload: &[u8]) -> Result<Self, ProtocolError> {
        check(msgid, ATTITUDE_ID, payload, Self::LEN)?;
        let f = |i: usize| f32::from_le_bytes(payload[i..i + 4].try_into().unwrap());
        Ok(Attitude {
            time_boot_ms: u32::from_le_bytes(payload[0..4].try_into().unwrap()),
            roll: f(4),
            pitch: f(8),
            yaw: f(12),
            rollspeed: f(16),
            pitchspeed: f(20),
            yawspeed: f(24),
        })
    }
}

/// RAW_IMU — raw gyroscope/accelerometer/magnetometer readings. The
/// 16-bit gyro words are the exact SRAM cells attack V1 targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawImu {
    /// Microseconds since boot.
    pub time_usec: u64,
    /// Accelerometer X/Y/Z.
    pub acc: [i16; 3],
    /// Gyroscope X/Y/Z.
    pub gyro: [i16; 3],
    /// Magnetometer X/Y/Z.
    pub mag: [i16; 3],
}

impl RawImu {
    /// Payload size on the wire.
    pub const LEN: usize = 26;

    /// Encode to the 26-byte wire payload.
    pub fn to_payload(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(Self::LEN);
        p.extend_from_slice(&self.time_usec.to_le_bytes());
        for arr in [self.acc, self.gyro, self.mag] {
            for v in arr {
                p.extend_from_slice(&v.to_le_bytes());
            }
        }
        p
    }

    /// Decode from a packet payload.
    pub fn from_payload(msgid: u8, payload: &[u8]) -> Result<Self, ProtocolError> {
        check(msgid, RAW_IMU_ID, payload, Self::LEN)?;
        let w = |i: usize| i16::from_le_bytes(payload[i..i + 2].try_into().unwrap());
        Ok(RawImu {
            time_usec: u64::from_le_bytes(payload[0..8].try_into().unwrap()),
            acc: [w(8), w(10), w(12)],
            gyro: [w(14), w(16), w(18)],
            mag: [w(20), w(22), w(24)],
        })
    }
}

/// SYS_STATUS — system health, including the CPU `load` field in which the
/// paper's §III constraint shows up: "an APM board running Arduplane 2.7 is
/// already at about 96% CPU usage" (load = 960 in 0.1% units).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SysStatus {
    /// Sensors present bit field.
    pub sensors_present: u32,
    /// Sensors enabled bit field.
    pub sensors_enabled: u32,
    /// Sensors healthy bit field.
    pub sensors_health: u32,
    /// Main-loop load in 0.1% units (960 = 96%).
    pub load: u16,
    /// Battery voltage, mV.
    pub voltage_battery: u16,
    /// Battery current, 10 mA.
    pub current_battery: i16,
    /// Communication drop rate, 0.01%.
    pub drop_rate_comm: u16,
    /// Communication error count.
    pub errors_comm: u16,
    /// Autopilot-specific error counts.
    pub errors_count: [u16; 4],
    /// Remaining battery, percent.
    pub battery_remaining: i8,
}

impl SysStatus {
    /// Payload size on the wire.
    pub const LEN: usize = 31;

    /// Encode to the 31-byte wire payload (fields sorted by size, as
    /// MAVLink v1 does).
    pub fn to_payload(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(Self::LEN);
        p.extend_from_slice(&self.sensors_present.to_le_bytes());
        p.extend_from_slice(&self.sensors_enabled.to_le_bytes());
        p.extend_from_slice(&self.sensors_health.to_le_bytes());
        p.extend_from_slice(&self.load.to_le_bytes());
        p.extend_from_slice(&self.voltage_battery.to_le_bytes());
        p.extend_from_slice(&self.current_battery.to_le_bytes());
        p.extend_from_slice(&self.drop_rate_comm.to_le_bytes());
        p.extend_from_slice(&self.errors_comm.to_le_bytes());
        for e in self.errors_count {
            p.extend_from_slice(&e.to_le_bytes());
        }
        p.push(self.battery_remaining as u8);
        p
    }

    /// Decode from a packet payload.
    pub fn from_payload(msgid: u8, payload: &[u8]) -> Result<Self, ProtocolError> {
        check(msgid, SYS_STATUS_ID, payload, Self::LEN)?;
        let u32_at = |i: usize| u32::from_le_bytes(payload[i..i + 4].try_into().unwrap());
        let u16_at = |i: usize| u16::from_le_bytes(payload[i..i + 2].try_into().unwrap());
        Ok(SysStatus {
            sensors_present: u32_at(0),
            sensors_enabled: u32_at(4),
            sensors_health: u32_at(8),
            load: u16_at(12),
            voltage_battery: u16_at(14),
            current_battery: u16_at(16) as i16,
            drop_rate_comm: u16_at(18),
            errors_comm: u16_at(20),
            errors_count: [u16_at(22), u16_at(24), u16_at(26), u16_at(28)],
            battery_remaining: payload[30] as i8,
        })
    }
}

/// PARAM_SET — ground station writes a named parameter. This is the message
/// whose handler carries the injected buffer-overflow vulnerability in the
/// attack setup (§IV-B): the param name is copied into a fixed stack buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSet {
    /// New parameter value.
    pub param_value: f32,
    /// Target system.
    pub target_system: u8,
    /// Target component.
    pub target_component: u8,
    /// Parameter name, up to 16 bytes.
    pub param_id: Vec<u8>,
    /// Parameter type enum.
    pub param_type: u8,
}

impl ParamSet {
    /// Payload size on the wire.
    pub const LEN: usize = 23;

    /// Encode to the 23-byte wire payload (name zero-padded to 16).
    pub fn to_payload(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(Self::LEN);
        p.extend_from_slice(&self.param_value.to_le_bytes());
        p.push(self.target_system);
        p.push(self.target_component);
        let mut id = self.param_id.clone();
        id.resize(16, 0);
        p.extend_from_slice(&id);
        p.push(self.param_type);
        p
    }

    /// Decode from a packet payload.
    pub fn from_payload(msgid: u8, payload: &[u8]) -> Result<Self, ProtocolError> {
        check(msgid, PARAM_SET_ID, payload, Self::LEN)?;
        Ok(ParamSet {
            param_value: f32::from_le_bytes(payload[0..4].try_into().unwrap()),
            target_system: payload[4],
            target_component: payload[5],
            param_id: payload[6..22].to_vec(),
            param_type: payload[22],
        })
    }
}

/// COMMAND_LONG — ground station sends a command with seven float
/// parameters. The synthetic firmware's second dispatch target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommandLong {
    /// The seven command parameters.
    pub params: [f32; 7],
    /// Command id (MAV_CMD).
    pub command: u16,
    /// Target system.
    pub target_system: u8,
    /// Target component.
    pub target_component: u8,
    /// 0 = first transmission.
    pub confirmation: u8,
}

impl CommandLong {
    /// Payload size on the wire.
    pub const LEN: usize = 33;

    /// Encode to the 33-byte wire payload.
    pub fn to_payload(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(Self::LEN);
        for v in self.params {
            p.extend_from_slice(&v.to_le_bytes());
        }
        p.extend_from_slice(&self.command.to_le_bytes());
        p.push(self.target_system);
        p.push(self.target_component);
        p.push(self.confirmation);
        p
    }

    /// Decode from a packet payload.
    pub fn from_payload(msgid: u8, payload: &[u8]) -> Result<Self, ProtocolError> {
        check(msgid, COMMAND_LONG_ID, payload, Self::LEN)?;
        let mut params = [0f32; 7];
        for (i, p) in params.iter_mut().enumerate() {
            *p = f32::from_le_bytes(payload[i * 4..i * 4 + 4].try_into().unwrap());
        }
        Ok(CommandLong {
            params,
            command: u16::from_le_bytes(payload[28..30].try_into().unwrap()),
            target_system: payload[30],
            target_component: payload[31],
            confirmation: payload[32],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_round_trip() {
        let h = Heartbeat {
            vehicle_type: 1,
            autopilot: 3,
            base_mode: 81,
            custom_mode: 0,
            system_status: 4,
            mavlink_version: 3,
        };
        let p = h.to_payload();
        assert_eq!(p.len(), Heartbeat::LEN);
        assert_eq!(Heartbeat::from_payload(HEARTBEAT_ID, &p).unwrap(), h);
    }

    #[test]
    fn attitude_round_trip() {
        let a = Attitude {
            time_boot_ms: 123456,
            roll: 0.1,
            pitch: -0.2,
            yaw: 3.04,
            rollspeed: 0.01,
            pitchspeed: -0.02,
            yawspeed: 0.0,
        };
        let p = a.to_payload();
        assert_eq!(p.len(), Attitude::LEN);
        assert_eq!(Attitude::from_payload(ATTITUDE_ID, &p).unwrap(), a);
    }

    #[test]
    fn raw_imu_round_trip() {
        let r = RawImu {
            time_usec: 987654321,
            acc: [10, -20, 1000],
            gyro: [5, -6, 7],
            mag: [-100, 200, -300],
        };
        let p = r.to_payload();
        assert_eq!(p.len(), RawImu::LEN);
        assert_eq!(RawImu::from_payload(RAW_IMU_ID, &p).unwrap(), r);
    }

    #[test]
    fn param_set_round_trip() {
        let s = ParamSet {
            param_value: 42.5,
            target_system: 1,
            target_component: 1,
            param_id: b"RATE_RLL_P\0\0\0\0\0\0".to_vec(),
            param_type: 9,
        };
        let p = s.to_payload();
        assert_eq!(p.len(), ParamSet::LEN);
        assert_eq!(ParamSet::from_payload(PARAM_SET_ID, &p).unwrap(), s);
    }

    #[test]
    fn sys_status_round_trip() {
        let s = SysStatus {
            sensors_present: 0x0030_0fff,
            sensors_enabled: 0x0030_0f0f,
            sensors_health: 0x0030_0fff,
            load: 960, // the paper's 96% CPU
            voltage_battery: 11_100,
            current_battery: -1,
            drop_rate_comm: 3,
            errors_comm: 1,
            errors_count: [0, 1, 2, 3],
            battery_remaining: 73,
        };
        let p = s.to_payload();
        assert_eq!(p.len(), SysStatus::LEN);
        assert_eq!(SysStatus::from_payload(SYS_STATUS_ID, &p).unwrap(), s);
    }

    #[test]
    fn wrong_id_and_length_rejected() {
        assert!(matches!(
            Heartbeat::from_payload(ATTITUDE_ID, &[0; 9]),
            Err(ProtocolError::WrongMessageId { .. })
        ));
        assert!(matches!(
            Heartbeat::from_payload(HEARTBEAT_ID, &[0; 8]),
            Err(ProtocolError::BadPayloadLength { .. })
        ));
    }

    #[test]
    fn command_long_round_trip() {
        let c = CommandLong {
            params: [1.0, -2.0, 0.5, 0.0, 100.0, -0.25, 7.5],
            command: 400, // MAV_CMD_COMPONENT_ARM_DISARM
            target_system: 1,
            target_component: 1,
            confirmation: 0,
        };
        let p = c.to_payload();
        assert_eq!(p.len(), CommandLong::LEN);
        assert_eq!(CommandLong::from_payload(COMMAND_LONG_ID, &p).unwrap(), c);
    }

    #[test]
    fn short_param_name_zero_padded() {
        let s = ParamSet {
            param_value: 0.0,
            target_system: 0,
            target_component: 0,
            param_id: b"KP".to_vec(),
            param_type: 0,
        };
        let p = s.to_payload();
        assert_eq!(&p[6..8], b"KP");
        assert!(p[8..22].iter().all(|&b| b == 0));
    }
}
