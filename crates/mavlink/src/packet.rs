//! Packet framing: the 6-byte header, X25 checksum, and the receive-side
//! parser state machine.

use crate::ProtocolError;

/// Start-of-frame magic ("state magic number" in the paper's Fig. 2).
pub const MAGIC: u8 = 0xfe;
/// Maximum payload size.
pub const MAX_PAYLOAD: usize = 255;
/// Minimum payload size noted by the paper (a HEARTBEAT).
pub const MIN_PAYLOAD: usize = 9;
/// Header length: magic, len, seq, sysid, compid, msgid.
pub const HEADER_LEN: usize = 6;

/// X25 / CRC-16-MCRF4XX checksum used by MAVLink.
pub fn crc_x25(bytes: &[u8]) -> u16 {
    let mut crc: u16 = 0xffff;
    for &b in bytes {
        let mut tmp = b ^ (crc as u8);
        tmp ^= tmp << 4;
        crc = (crc >> 8) ^ (u16::from(tmp) << 8) ^ (u16::from(tmp) << 3) ^ (u16::from(tmp) >> 4);
    }
    crc
}

/// Accumulate one byte into a running X25 checksum (firmware-shaped API).
pub fn crc_accumulate(crc: u16, b: u8) -> u16 {
    let mut tmp = b ^ (crc as u8);
    tmp ^= tmp << 4;
    (crc >> 8) ^ (u16::from(tmp) << 8) ^ (u16::from(tmp) << 3) ^ (u16::from(tmp) >> 4)
}

/// One MAVLink packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Packet sequence number.
    pub seq: u8,
    /// Sender system id.
    pub sysid: u8,
    /// Sender component id.
    pub compid: u8,
    /// Message id (selects the payload codec).
    pub msgid: u8,
    /// Raw payload.
    pub payload: Vec<u8>,
}

impl Packet {
    /// Build a packet; fails if the payload exceeds [`MAX_PAYLOAD`].
    pub fn new(
        seq: u8,
        sysid: u8,
        compid: u8,
        msgid: u8,
        payload: Vec<u8>,
    ) -> Result<Self, ProtocolError> {
        if payload.len() > MAX_PAYLOAD {
            return Err(ProtocolError::PayloadTooLong { len: payload.len() });
        }
        Ok(Packet {
            seq,
            sysid,
            compid,
            msgid,
            payload,
        })
    }

    /// Wire length of the encoded packet.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.len() + 2
    }

    /// Encode to wire bytes. The checksum covers everything after the magic
    /// byte, seeded with the per-message `crc_extra` byte, as in MAVLink v1.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        out.push(MAGIC);
        out.push(self.payload.len() as u8);
        out.push(self.seq);
        out.push(self.sysid);
        out.push(self.compid);
        out.push(self.msgid);
        out.extend_from_slice(&self.payload);
        let mut crc = crc_x25(&out[1..]);
        crc = crc_accumulate(crc, crate::msg::crc_extra(self.msgid));
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }
}

/// Receive-side parser state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Idle,
    Len,
    Seq,
    Sysid,
    Compid,
    Msgid,
    Payload,
    Crc1,
    Crc2,
}

/// Byte-at-a-time MAVLink parser — the same state machine the APM firmware
/// runs in its UART receive loop.
#[derive(Debug, Clone)]
pub struct Parser {
    state: State,
    len: u8,
    got: usize,
    pkt: Packet,
    crc: u16,
    crc_lo: u8,
    /// Count of packets dropped for checksum errors.
    pub bad_checksums: u64,
    /// Count of complete, checksum-valid packets returned.
    pub packets_parsed: u64,
    /// Total bytes fed through [`Parser::push`].
    pub bytes_fed: u64,
}

impl Default for Parser {
    fn default() -> Self {
        Parser::new()
    }
}

impl Parser {
    /// New idle parser.
    pub fn new() -> Self {
        Parser {
            state: State::Idle,
            len: 0,
            got: 0,
            pkt: Packet {
                seq: 0,
                sysid: 0,
                compid: 0,
                msgid: 0,
                payload: Vec::new(),
            },
            crc: 0xffff,
            crc_lo: 0,
            bad_checksums: 0,
            packets_parsed: 0,
            bytes_fed: 0,
        }
    }

    /// Feed one byte; returns a complete, checksum-valid packet when one
    /// finishes.
    pub fn push(&mut self, b: u8) -> Option<Packet> {
        self.bytes_fed += 1;
        match self.state {
            State::Idle => {
                if b == MAGIC {
                    self.crc = 0xffff;
                    self.pkt.payload.clear();
                    self.state = State::Len;
                }
            }
            State::Len => {
                self.len = b;
                self.crc = crc_accumulate(self.crc, b);
                self.state = State::Seq;
            }
            State::Seq => {
                self.pkt.seq = b;
                self.crc = crc_accumulate(self.crc, b);
                self.state = State::Sysid;
            }
            State::Sysid => {
                self.pkt.sysid = b;
                self.crc = crc_accumulate(self.crc, b);
                self.state = State::Compid;
            }
            State::Compid => {
                self.pkt.compid = b;
                self.crc = crc_accumulate(self.crc, b);
                self.state = State::Msgid;
            }
            State::Msgid => {
                self.pkt.msgid = b;
                self.crc = crc_accumulate(self.crc, b);
                self.got = 0;
                self.state = if self.len == 0 {
                    State::Crc1
                } else {
                    State::Payload
                };
            }
            State::Payload => {
                self.pkt.payload.push(b);
                self.crc = crc_accumulate(self.crc, b);
                self.got += 1;
                if self.got >= self.len as usize {
                    self.state = State::Crc1;
                }
            }
            State::Crc1 => {
                self.crc_lo = b;
                self.state = State::Crc2;
            }
            State::Crc2 => {
                self.state = State::Idle;
                let expected = crc_accumulate(self.crc, crate::msg::crc_extra(self.pkt.msgid));
                let received = u16::from_le_bytes([self.crc_lo, b]);
                if expected == received {
                    self.packets_parsed += 1;
                    return Some(self.pkt.clone());
                }
                self.bad_checksums += 1;
            }
        }
        None
    }

    /// Feed a whole buffer, collecting every complete packet.
    pub fn push_all(&mut self, bytes: &[u8]) -> Vec<Packet> {
        bytes.iter().filter_map(|&b| self.push(b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_x25_known_vector() {
        // X25 of empty input is the seed.
        assert_eq!(crc_x25(&[]), 0xffff);
        // CRC-16/MCRF4XX check value for "123456789" is 0x6f91.
        assert_eq!(crc_x25(b"123456789"), 0x6f91);
    }

    #[test]
    fn packet_round_trip() {
        let p = Packet::new(7, 255, 190, 0, vec![1, 2, 3, 4, 5, 6, 7, 8, 9]).unwrap();
        let wire = p.encode();
        assert_eq!(wire.len(), 17, "paper: minimum packet length is 17 bytes");
        assert_eq!(wire[0], MAGIC);
        let mut parser = Parser::new();
        let got = parser.push_all(&wire);
        assert_eq!(got, vec![p]);
    }

    #[test]
    fn corrupt_byte_rejected() {
        let p = Packet::new(0, 1, 1, 0, vec![0; 9]).unwrap();
        let mut wire = p.encode();
        wire[8] ^= 0xff;
        let mut parser = Parser::new();
        assert!(parser.push_all(&wire).is_empty());
        assert_eq!(parser.bad_checksums, 1);
    }

    #[test]
    fn parser_counts_traffic() {
        let p = Packet::new(7, 255, 190, 0, vec![0; 9]).unwrap();
        let good = p.encode();
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        let mut parser = Parser::new();
        parser.push_all(&good);
        parser.push_all(&bad);
        parser.push_all(&good);
        assert_eq!(parser.packets_parsed, 2);
        assert_eq!(parser.bad_checksums, 1);
        assert_eq!(parser.bytes_fed, 3 * good.len() as u64);
    }

    #[test]
    fn resyncs_after_garbage() {
        let p = Packet::new(1, 2, 3, 0, vec![0; 9]).unwrap();
        let mut stream = vec![0x12, 0x34]; // leading garbage, no magic
                                           // A complete-but-corrupt frame: magic, len=2, 4 header bytes,
                                           // 2 payload bytes, 2 checksum bytes that won't match.
        stream.extend([0xfe, 0x02, 0xaa, 0xaa, 0xaa, 0xaa, 0xaa, 0xaa, 0xaa, 0xaa]);
        stream.extend(p.encode());
        let mut parser = Parser::new();
        let got = parser.push_all(&stream);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], p);
    }

    #[test]
    fn oversize_payload_rejected_at_construction() {
        assert!(matches!(
            Packet::new(0, 1, 1, 23, vec![0; 256]),
            Err(ProtocolError::PayloadTooLong { len: 256 })
        ));
    }

    #[test]
    fn zero_length_payload_parses() {
        // Not paper-minimal, but the parser must not hang on len = 0.
        let p = Packet::new(0, 1, 1, 0, vec![]).unwrap();
        let mut parser = Parser::new();
        assert_eq!(parser.push_all(&p.encode()).len(), 1);
    }

    #[test]
    fn back_to_back_packets() {
        let a = Packet::new(0, 1, 1, 0, vec![0; 9]).unwrap();
        let b = Packet::new(1, 1, 1, 0, vec![1; 9]).unwrap();
        let mut wire = a.encode();
        wire.extend(b.encode());
        let mut parser = Parser::new();
        let got = parser.push_all(&wire);
        assert_eq!(got, vec![a, b]);
    }
}
