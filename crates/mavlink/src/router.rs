//! Multiplexing ground-station router: one operator console, many UAVs.
//!
//! A fleet campaign gives every board its own radio link (its own
//! [`crate::LossyChannel`] pair). The router owns a byte-accurate
//! [`Parser`] per link plus a [`GroundStation`] session per link, demuxes
//! downlink traffic, and aggregates fleet-wide statistics — the
//! "multiplexing ground station" of the campaign engine.
//!
//! Framing is per-link (each link is a distinct serial stream; bytes from
//! different boards never interleave mid-packet), while session state —
//! decoded telemetry, heartbeat liveness, sequence-gap accounting — is
//! kept per link as well, so one flapping link cannot mask another's
//! silence.

use crate::ground_station::GroundStation;
use crate::history::DEFAULT_CAPACITY;
use std::collections::BTreeMap;

/// Fleet-wide aggregate counters, summed over every link session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterTotals {
    /// Links with at least one session.
    pub links: usize,
    /// Checksum-valid packets across all links.
    pub packets: u64,
    /// Decoded heartbeats across all links.
    pub heartbeats: u64,
    /// Checksum failures across all links.
    pub bad_checksums: u64,
    /// Sequence-gap events across all links.
    pub seq_gaps: u64,
    /// Estimated packets lost (from sequence deltas) across all links.
    pub packets_lost: u64,
}

/// A ground-station multiplexer over many per-board links.
#[derive(Debug, Clone, Default)]
pub struct Router {
    capacity: usize,
    sessions: BTreeMap<u64, GroundStation>,
}

impl Router {
    /// A router whose sessions use the default scroll-back depth.
    pub fn new() -> Self {
        Router::with_capacity(DEFAULT_CAPACITY)
    }

    /// A router whose per-link sessions retain at most `capacity` packets
    /// each (fleet campaigns keep this small — totals stay exact).
    pub fn with_capacity(capacity: usize) -> Self {
        Router {
            capacity: capacity.max(1),
            sessions: BTreeMap::new(),
        }
    }

    /// The session for `link`, created on first use.
    pub fn session(&mut self, link: u64) -> &mut GroundStation {
        let capacity = self.capacity;
        self.sessions
            .entry(link)
            .or_insert_with(|| GroundStation::with_capacity(capacity))
    }

    /// The session for `link`, if any traffic has been routed to it.
    pub fn get(&self, link: u64) -> Option<&GroundStation> {
        self.sessions.get(&link)
    }

    /// Install an externally driven session for `link`, replacing any
    /// existing one. Fleet campaigns drive one [`GroundStation`] per board
    /// on worker threads, then adopt them all into one router so the
    /// operator-console aggregates ([`Router::totals`],
    /// [`Router::silent_links`]) see the whole fleet.
    pub fn adopt(&mut self, link: u64, session: GroundStation) {
        self.sessions.insert(link, session);
    }

    /// Feed downlink bytes arriving on `link`.
    pub fn ingest(&mut self, link: u64, bytes: &[u8]) {
        self.session(link).ingest(bytes);
    }

    /// Iterate `(link, session)` in link order.
    pub fn sessions(&self) -> impl Iterator<Item = (u64, &GroundStation)> {
        self.sessions.iter().map(|(k, v)| (*k, v))
    }

    /// Links whose most recent `window` packets hold fewer than
    /// `min_heartbeats` heartbeats — the operator's "which UAVs went
    /// quiet" display.
    pub fn silent_links(&self, window: usize, min_heartbeats: usize) -> Vec<u64> {
        self.sessions
            .iter()
            .filter(|(_, s)| !s.link_alive(window, min_heartbeats))
            .map(|(k, _)| *k)
            .collect()
    }

    /// Aggregate statistics over every link.
    pub fn totals(&self) -> RouterTotals {
        let mut t = RouterTotals {
            links: self.sessions.len(),
            ..RouterTotals::default()
        };
        for s in self.sessions.values() {
            t.packets += s.packets_parsed();
            t.heartbeats += s.heartbeats.total();
            t.bad_checksums += s.bad_checksums();
            t.seq_gaps += s.seq_gaps_total();
            t.packets_lost += s.packets_lost();
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{LossConfig, LossyChannel};

    #[test]
    fn demuxes_per_link_and_aggregates() {
        let mut router = Router::with_capacity(64);
        // Two UAVs (both sysid 1, as the firmware hardcodes) on separate
        // links; one link drops a frame.
        let mut uav_a = GroundStation::new();
        uav_a.sysid = 1;
        let mut uav_b = GroundStation::new();
        uav_b.sysid = 1;
        for _ in 0..4 {
            let hb = uav_a.heartbeat();
            router.ingest(0, &hb);
        }
        let frames: Vec<Vec<u8>> = (0..4).map(|_| uav_b.heartbeat()).collect();
        router.ingest(1, &frames[0]);
        router.ingest(1, &frames[2]); // frame 1 lost on link 1
        router.ingest(1, &frames[3]);

        assert_eq!(router.get(0).unwrap().heartbeats.total(), 4);
        assert_eq!(router.get(1).unwrap().heartbeats.total(), 3);
        assert_eq!(router.get(0).unwrap().seq_gaps(1), 0);
        assert_eq!(router.get(1).unwrap().seq_gaps(1), 1);
        let t = router.totals();
        assert_eq!(t.links, 2);
        assert_eq!(t.packets, 7);
        assert_eq!(t.heartbeats, 7);
        assert_eq!(t.seq_gaps, 1);
        assert_eq!(t.packets_lost, 1);
        assert!(router.silent_links(8, 1).is_empty());
        assert!(router.get(2).is_none());
    }

    #[test]
    fn lossy_link_shows_up_only_on_its_own_session() {
        let mut router = Router::new();
        let mut clean = LossyChannel::perfect();
        let mut dirty = LossyChannel::new(LossConfig::uniform(0.01, 11));
        let mut uav = GroundStation::new();
        uav.sysid = 1;
        for _ in 0..50 {
            let hb = uav.heartbeat();
            router.ingest(0, &clean.transmit(&hb));
            router.ingest(1, &dirty.transmit(&hb));
        }
        router.ingest(1, &dirty.flush());
        assert_eq!(router.get(0).unwrap().heartbeats.total(), 50);
        assert_eq!(router.get(0).unwrap().bad_checksums(), 0);
        let lossy = router.get(1).unwrap();
        assert!(lossy.heartbeats.total() < 50);
        assert!(lossy.bad_checksums() + lossy.seq_gaps_total() > 0);
        let t = router.totals();
        assert_eq!(t.links, 2);
        assert!(t.heartbeats < 100 && t.heartbeats > 50);
    }
}
