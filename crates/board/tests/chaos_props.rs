//! Property tests over the chaos-hardened recovery pipeline: under *any*
//! seeded fault plan, a boot must end in exactly one of three states —
//! success with a readback-verified, locked image; a typed
//! [`MasterError`]; or the degraded safe mode (also verified and locked).
//! It must never panic, and it must never release a partially programmed
//! image as if it were good.

use mavr::policy::RandomizationPolicy;
use mavr_board::{ChaosConfig, FaultPlan, MasterError, MavrBoard, RecoveryCause};
use proptest::prelude::*;
use std::sync::OnceLock;
use synth_firmware::{apps, build, BuildOptions, FirmwareBuild};
use telemetry::Telemetry;

/// The firmware build is the expensive part; share one across all cases.
fn firmware() -> &'static FirmwareBuild {
    static FW: OnceLock<FirmwareBuild> = OnceLock::new();
    FW.get_or_init(|| build(&apps::tiny_test_app(), &BuildOptions::vulnerable_mavr()).unwrap())
}

/// A successful boot's contract: the application flash matches the image
/// the master believes it shipped, page for page, and the lock fuse is
/// set. Holds for fresh and degraded boots alike.
fn assert_released_image_verified(board: &MavrBoard) {
    let image = board
        .master
        .last_image
        .as_ref()
        .expect("a successful programming boot records its image");
    let page = board.app.machine.device().flash_page_bytes as usize;
    assert!(
        board.app.mismatched_pages(&image.bytes, page).is_empty(),
        "released image must be readback-verified"
    );
    assert!(board.app.locked(), "released board must have its fuse set");
}

/// Fault rates spanning "inert" through "hopeless": below ~1e-5 faults are
/// rare, around 1e-4 retries dominate, above 1e-3 most boots brick.
fn fault_rate() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0), 1e-6..1e-4f64, 1e-4..1e-3f64, 1e-3..2e-2f64,]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Provisioning under chaos: success implies a verified, locked image
    /// (possibly via the degraded path — impossible on a first boot, which
    /// has no last-known-good, so it must then fail typed); failure is a
    /// typed error and nothing was released.
    #[test]
    fn provisioning_never_releases_unverified_flash(
        seed in any::<u64>(),
        rate in fault_rate(),
    ) {
        let fw = firmware();
        let plan = FaultPlan::new(seed, ChaosConfig::uniform(rate));
        match MavrBoard::provision_chaos(
            &fw.image,
            seed ^ 0x9e37_79b9_7f4a_7c15,
            RandomizationPolicy::default(),
            Telemetry::off(),
            plan,
        ) {
            Ok(board) => assert_released_image_verified(&board),
            Err(e) => {
                // Typed, displayable, and nothing half-programmed escaped.
                prop_assert!(!e.to_string().is_empty());
                if let MasterError::Programming { boot, .. }
                | MasterError::Bricked { boot, .. } = e
                {
                    prop_assert_eq!(boot, 1, "first boot reports ordinal 1");
                }
            }
        }
    }

    /// Recovery reflashes under chaos: every recover() outcome is Ok with
    /// a verified image or a typed error that leaves the last-known-good
    /// image untouched. The board-level run loop never panics either way.
    #[test]
    fn recovery_pipeline_never_panics_or_corrupts(
        seed in any::<u64>(),
        rate in fault_rate(),
    ) {
        let fw = firmware();
        // Provision clean so every case exercises the *recovery* path;
        // the previous property covers chaotic first boots.
        let mut board = MavrBoard::provision(
            &fw.image,
            seed,
            RandomizationPolicy::default(),
        )
        .unwrap();
        board.master.chaos = FaultPlan::new(seed.rotate_left(17), ChaosConfig::uniform(rate));
        let _ = board.run(150_000);
        for _ in 0..2 {
            // Last-known-good going *into* this boot: what a degraded
            // fallback must re-stream and what a failure must preserve.
            let good = board.master.last_image.as_ref().unwrap().bytes.clone();
            match board.recover(RecoveryCause::HeartbeatLost) {
                Ok(report) => {
                    assert_released_image_verified(&board);
                    if report.degraded {
                        prop_assert!(
                            board.master.resilience.degraded_boots > 0,
                            "degraded boots must be counted"
                        );
                        // Degraded mode re-streams the old layout verbatim.
                        prop_assert_eq!(
                            &board.master.last_image.as_ref().unwrap().bytes,
                            &good
                        );
                    }
                    prop_assert!(
                        u64::from(report.retries) <= board.master.resilience.reflash_retries,
                        "per-boot retries never exceed the lifetime counter"
                    );
                }
                Err(e) => {
                    prop_assert!(!e.to_string().is_empty());
                    // A failed boot must not promote a partial image to
                    // last-known-good.
                    prop_assert_eq!(&board.master.last_image.as_ref().unwrap().bytes, &good);
                    // Bricked is terminal: stop driving this board.
                    break;
                }
            }
        }
    }
}
