//! The external flash chip (§V-A1): an M95M02-class 256 KiB SPI EEPROM
//! holding the unrandomized binary and its symbol table.
//!
//! "This flash chip serves as the only entry point to introduce new code
//! onto the MAVR system. The randomized binary is never stored on this
//! external flash memory and the application processor never reads from
//! this flash memory."

use crate::chaos::FaultPlan;
use hexfile::MavrContainer;

/// Capacity of the prototype part (matches the application processor's
/// program memory, per §V-A1).
pub const CAPACITY_BYTES: usize = 256 * 1024;

/// Directive prefix of the integrity footer appended to the stored text.
const CRC_DIRECTIVE: &str = ";CRC32 ";

/// Errors from the external flash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlashError {
    /// The uploaded container does not fit the chip.
    TooLarge {
        /// Bytes required.
        required: usize,
    },
    /// Read of an empty chip.
    Empty,
    /// The stored container failed to parse (corruption).
    Corrupt(String),
    /// The CRC-32 footer did not match the stored bytes (bit rot, stuck
    /// cells, or a torn upload).
    IntegrityFailure {
        /// CRC the footer recorded at upload time.
        expected: u32,
        /// CRC computed over the bytes actually read back.
        actual: u32,
    },
}

impl std::fmt::Display for FlashError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlashError::TooLarge { required } => write!(
                f,
                "container needs {required} bytes, chip holds {CAPACITY_BYTES}"
            ),
            FlashError::Empty => write!(f, "external flash is empty"),
            FlashError::Corrupt(why) => write!(f, "stored container corrupt: {why}"),
            FlashError::IntegrityFailure { expected, actual } => write!(
                f,
                "container integrity failure: footer CRC {expected:#010x}, read back {actual:#010x}"
            ),
        }
    }
}

impl std::error::Error for FlashError {}

/// CRC-32 (IEEE 802.3, reflected) over `data`. Bitwise — container-sized
/// inputs are small enough that a table buys nothing here. The board crate
/// carries its own copy because the snapshot crate (which also has one)
/// sits *above* it in the dependency graph.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// The chip: stores the MAVR container verbatim, as `avrdude` would upload
/// it (§VI-B2: "receives the HEX file and stores it verbatim").
#[derive(Debug, Clone, Default)]
pub struct ExternalFlash {
    contents: Option<Vec<u8>>,
}

impl ExternalFlash {
    /// An erased chip.
    pub fn new() -> Self {
        ExternalFlash::default()
    }

    /// Upload a container (the flashing step on the host).
    ///
    /// The paper warns about exactly this failure mode: the chip is sized
    /// to the application flash, and the symbol table rides on top, so "a
    /// binary that is perilously close to the maximum allowable size" can
    /// exhaust the chip (§VI-B2).
    pub fn upload(&mut self, container: &MavrContainer) -> Result<(), FlashError> {
        // The chip stores the *binary* content the container denotes:
        // symbol directives + program bytes, plus the CRC-32 integrity
        // footer. Model the footprint as the program bytes plus the
        // encoded directive text (the footer counts: it occupies real
        // cells, so it must not push a near-capacity binary over §VI-B2's
        // line for free).
        let mut text = container.to_text();
        let footer = format!("{CRC_DIRECTIVE}{:08x}\n", crc32(text.as_bytes()));
        text.push_str(&footer);
        let directive_bytes: usize = text
            .lines()
            .filter(|l| l.starts_with(';'))
            .map(|l| l.len() + 1)
            .sum();
        let required = container.image.bytes.len() + directive_bytes;
        if required > CAPACITY_BYTES {
            return Err(FlashError::TooLarge { required });
        }
        self.contents = Some(text.into_bytes());
        Ok(())
    }

    /// Master-side read of the whole stored container: CRC-checked against
    /// the upload-time footer, then parsed.
    pub fn read(&self) -> Result<MavrContainer, FlashError> {
        let bytes = self.contents.as_ref().ok_or(FlashError::Empty)?;
        Self::decode(bytes)
    }

    /// [`ExternalFlash::read`] through a fault plan: the plan corrupts a
    /// transient copy of the cells (the stored container is untouched), so
    /// each retry observes a fresh roll of the configured bit rot.
    pub fn read_chaos(&self, chaos: &mut FaultPlan) -> Result<MavrContainer, FlashError> {
        let bytes = self.contents.as_ref().ok_or(FlashError::Empty)?;
        if !chaos.is_active() {
            return Self::decode(bytes);
        }
        let mut copy = bytes.clone();
        chaos.mangle_flash_read(&mut copy);
        Self::decode(&copy)
    }

    /// Verify the integrity footer, strip it, and parse what precedes it.
    fn decode(bytes: &[u8]) -> Result<MavrContainer, FlashError> {
        let text = std::str::from_utf8(bytes).map_err(|e| FlashError::Corrupt(e.to_string()))?;
        let body_len = text
            .trim_end_matches('\n')
            .rfind('\n')
            .map(|i| i + 1)
            .unwrap_or(0);
        let (body, footer_line) = text.split_at(body_len);
        let expected = footer_line
            .trim_end()
            .strip_prefix(CRC_DIRECTIVE)
            .and_then(|hex| u32::from_str_radix(hex.trim(), 16).ok())
            .ok_or_else(|| FlashError::Corrupt("missing ;CRC32 integrity footer".into()))?;
        let actual = crc32(body.as_bytes());
        if actual != expected {
            return Err(FlashError::IntegrityFailure { expected, actual });
        }
        MavrContainer::parse(body).map_err(|e| FlashError::Corrupt(e.to_string()))
    }

    /// Random-access byte read (the streaming interface of §VI-B3; `None`
    /// past the end or when empty).
    pub fn read_byte(&self, offset: usize) -> Option<u8> {
        self.contents.as_ref()?.get(offset).copied()
    }

    /// Whether anything is stored.
    pub fn is_programmed(&self) -> bool {
        self.contents.is_some()
    }

    /// Erase the chip.
    pub fn erase(&mut self) {
        self.contents = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synth_firmware::{apps, build, BuildOptions};

    #[test]
    fn upload_read_round_trip() {
        let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
        let container = mavr::preprocess(&fw.image).unwrap();
        let mut chip = ExternalFlash::new();
        assert!(!chip.is_programmed());
        chip.upload(&container).unwrap();
        assert!(chip.is_programmed());
        let back = chip.read().unwrap();
        assert_eq!(back.image, fw.image);
        assert!(chip.read_byte(0).is_some());
    }

    #[test]
    fn integrity_footer_is_stored_and_checked() {
        let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
        let mut chip = ExternalFlash::new();
        chip.upload(&mavr::preprocess(&fw.image).unwrap()).unwrap();
        // The footer is real stored content.
        let stored: Vec<u8> = (0..).map_while(|i| chip.read_byte(i)).collect();
        let text = std::str::from_utf8(&stored).unwrap();
        assert!(text
            .trim_end()
            .lines()
            .last()
            .unwrap()
            .starts_with(";CRC32 "));

        // Flip one stored bit: the read must fail closed with the CRC pair.
        let mut tampered = chip.clone();
        let mut bytes = stored.clone();
        let at = bytes.len() / 3;
        bytes[at] ^= 0x40;
        tampered.contents = Some(bytes);
        match tampered.read().unwrap_err() {
            FlashError::IntegrityFailure { expected, actual } => assert_ne!(expected, actual),
            other => panic!("expected IntegrityFailure, got {other:?}"),
        }

        // A chip written without a footer (legacy or torn upload) is corrupt.
        let mut legacy = chip.clone();
        let body_end = text.trim_end_matches('\n').rfind('\n').unwrap() + 1;
        legacy.contents = Some(stored[..body_end].to_vec());
        assert!(matches!(legacy.read().unwrap_err(), FlashError::Corrupt(_)));
    }

    #[test]
    fn chaos_read_with_inert_plan_matches_plain_read() {
        let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
        let mut chip = ExternalFlash::new();
        chip.upload(&mavr::preprocess(&fw.image).unwrap()).unwrap();
        let mut plan = crate::chaos::FaultPlan::none();
        assert_eq!(chip.read_chaos(&mut plan).unwrap(), chip.read().unwrap());
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn empty_chip_errors() {
        let chip = ExternalFlash::new();
        assert_eq!(chip.read().unwrap_err(), FlashError::Empty);
        assert_eq!(chip.read_byte(0), None);
    }

    #[test]
    fn erase_clears() {
        let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
        let mut chip = ExternalFlash::new();
        chip.upload(&mavr::preprocess(&fw.image).unwrap()).unwrap();
        chip.erase();
        assert!(!chip.is_programmed());
    }

    #[test]
    fn oversized_container_rejected() {
        // A full-size app (221 KiB) plus its symbol table is fine on the
        // 256 KiB chip; force failure with a near-capacity fake image.
        use avr_core::device::ATMEGA2560;
        use avr_core::image::{FirmwareImage, Symbol, SymbolKind};
        let mut img = FirmwareImage::new(ATMEGA2560);
        img.bytes = vec![0; 255 * 1024];
        img.text_end = 255 * 1024;
        img.symbols = (0..2000u32)
            .map(|i| Symbol {
                name: format!("very_long_function_symbol_name_{i:08}"),
                addr: i * 2,
                size: 2,
                kind: SymbolKind::Function,
            })
            .collect();
        let container = MavrContainer::new(img);
        let mut chip = ExternalFlash::new();
        assert!(matches!(
            chip.upload(&container),
            Err(FlashError::TooLarge { .. })
        ));
    }
}
