//! The external flash chip (§V-A1): an M95M02-class 256 KiB SPI EEPROM
//! holding the unrandomized binary and its symbol table.
//!
//! "This flash chip serves as the only entry point to introduce new code
//! onto the MAVR system. The randomized binary is never stored on this
//! external flash memory and the application processor never reads from
//! this flash memory."

use hexfile::MavrContainer;

/// Capacity of the prototype part (matches the application processor's
/// program memory, per §V-A1).
pub const CAPACITY_BYTES: usize = 256 * 1024;

/// Errors from the external flash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlashError {
    /// The uploaded container does not fit the chip.
    TooLarge {
        /// Bytes required.
        required: usize,
    },
    /// Read of an empty chip.
    Empty,
    /// The stored container failed to parse (corruption).
    Corrupt(String),
}

impl std::fmt::Display for FlashError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlashError::TooLarge { required } => write!(
                f,
                "container needs {required} bytes, chip holds {CAPACITY_BYTES}"
            ),
            FlashError::Empty => write!(f, "external flash is empty"),
            FlashError::Corrupt(why) => write!(f, "stored container corrupt: {why}"),
        }
    }
}

impl std::error::Error for FlashError {}

/// The chip: stores the MAVR container verbatim, as `avrdude` would upload
/// it (§VI-B2: "receives the HEX file and stores it verbatim").
#[derive(Debug, Clone, Default)]
pub struct ExternalFlash {
    contents: Option<Vec<u8>>,
}

impl ExternalFlash {
    /// An erased chip.
    pub fn new() -> Self {
        ExternalFlash::default()
    }

    /// Upload a container (the flashing step on the host).
    ///
    /// The paper warns about exactly this failure mode: the chip is sized
    /// to the application flash, and the symbol table rides on top, so "a
    /// binary that is perilously close to the maximum allowable size" can
    /// exhaust the chip (§VI-B2).
    pub fn upload(&mut self, container: &MavrContainer) -> Result<(), FlashError> {
        // The chip stores the *binary* content the container denotes:
        // symbol directives + program bytes. Model the footprint as the
        // program bytes plus the encoded directive text.
        let text = container.to_text();
        let directive_bytes: usize = text
            .lines()
            .filter(|l| l.starts_with(';'))
            .map(|l| l.len() + 1)
            .sum();
        let required = container.image.bytes.len() + directive_bytes;
        if required > CAPACITY_BYTES {
            return Err(FlashError::TooLarge { required });
        }
        self.contents = Some(text.into_bytes());
        Ok(())
    }

    /// Master-side read of the whole stored container.
    pub fn read(&self) -> Result<MavrContainer, FlashError> {
        let bytes = self.contents.as_ref().ok_or(FlashError::Empty)?;
        let text = std::str::from_utf8(bytes).map_err(|e| FlashError::Corrupt(e.to_string()))?;
        MavrContainer::parse(text).map_err(|e| FlashError::Corrupt(e.to_string()))
    }

    /// Random-access byte read (the streaming interface of §VI-B3; `None`
    /// past the end or when empty).
    pub fn read_byte(&self, offset: usize) -> Option<u8> {
        self.contents.as_ref()?.get(offset).copied()
    }

    /// Whether anything is stored.
    pub fn is_programmed(&self) -> bool {
        self.contents.is_some()
    }

    /// Erase the chip.
    pub fn erase(&mut self) {
        self.contents = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synth_firmware::{apps, build, BuildOptions};

    #[test]
    fn upload_read_round_trip() {
        let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
        let container = mavr::preprocess(&fw.image).unwrap();
        let mut chip = ExternalFlash::new();
        assert!(!chip.is_programmed());
        chip.upload(&container).unwrap();
        assert!(chip.is_programmed());
        let back = chip.read().unwrap();
        assert_eq!(back.image, fw.image);
        assert!(chip.read_byte(0).is_some());
    }

    #[test]
    fn empty_chip_errors() {
        let chip = ExternalFlash::new();
        assert_eq!(chip.read().unwrap_err(), FlashError::Empty);
        assert_eq!(chip.read_byte(0), None);
    }

    #[test]
    fn erase_clears() {
        let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
        let mut chip = ExternalFlash::new();
        chip.upload(&mavr::preprocess(&fw.image).unwrap()).unwrap();
        chip.erase();
        assert!(!chip.is_programmed());
    }

    #[test]
    fn oversized_container_rejected() {
        // A full-size app (221 KiB) plus its symbol table is fine on the
        // 256 KiB chip; force failure with a near-capacity fake image.
        use avr_core::device::ATMEGA2560;
        use avr_core::image::{FirmwareImage, Symbol, SymbolKind};
        let mut img = FirmwareImage::new(ATMEGA2560);
        img.bytes = vec![0; 255 * 1024];
        img.text_end = 255 * 1024;
        img.symbols = (0..2000u32)
            .map(|i| Symbol {
                name: format!("very_long_function_symbol_name_{i:08}"),
                addr: i * 2,
                size: 2,
                kind: SymbolKind::Function,
            })
            .collect();
        let container = MavrContainer::new(img);
        let mut chip = ExternalFlash::new();
        assert!(matches!(
            chip.upload(&container),
            Err(FlashError::TooLarge { .. })
        ));
    }
}
