//! The complete MAVR board: application + master + external flash, wired
//! together with failed-attack detection and automatic recovery (Fig. 7).

use avr_core::image::FirmwareImage;
use avr_sim::{CrashReport, Fault, MachineState};
use mavr::policy::RandomizationPolicy;
use telemetry::{Telemetry, Value};

use crate::app::AppProcessor;
use crate::ext_flash::ExternalFlash;
use crate::master::{MasterError, MasterProcessor, StartupReport};

/// Why the master recovered the application processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryCause {
    /// The simulator reported a hard fault (the omniscient view; the real
    /// master cannot see this directly).
    Fault(Fault),
    /// The heartbeat stopped — the signal the real master watches (§V-A2).
    HeartbeatLost,
}

/// Log entries produced by the board.
#[derive(Debug, Clone, PartialEq)]
pub enum BoardEvent {
    /// A (re)boot completed.
    Boot {
        /// Boot ordinal (1-based).
        boot: u32,
        /// Timing report.
        report: StartupReport,
    },
    /// A failed attack was detected and the board recovered.
    Recovery {
        /// What tripped the watchdog.
        cause: RecoveryCause,
        /// Boot ordinal of the recovery boot.
        boot: u32,
        /// Application-processor cycle count at the moment of detection
        /// (before the reflash) — campaign reports derive time-to-recovery
        /// from this.
        at_cycle: u64,
    },
}

/// The assembled MAVR platform.
#[derive(Debug, Clone)]
pub struct MavrBoard {
    /// The master processor.
    pub master: MasterProcessor,
    /// The application processor (its `machine.uart0` is the telemetry
    /// port facing the ground station).
    pub app: AppProcessor,
    /// The external flash holding the unrandomized container.
    pub ext_flash: ExternalFlash,
    /// Event log.
    pub events: Vec<BoardEvent>,
    /// Heartbeat-silence threshold in CPU cycles before the master declares
    /// a failed attack.
    pub heartbeat_timeout: u64,
    /// Post-mortem of the most recent recovery, captured *before* the
    /// reflash wiped the dead machine. `None` until the first recovery.
    pub last_crash: Option<CrashReport>,
    /// Known-attacker address ranges (`(byte_addr, len, label)`) used to
    /// annotate crash reports — e.g. `AttackContext::annotations()`.
    pub forensic_annotations: Vec<(u32, u32, String)>,
    /// Flight-recorder handle for detection/recovery events (the master and
    /// application machine carry clones of the same handle).
    pub telemetry: Telemetry,
    watch_since: u64,
}

impl MavrBoard {
    /// Provision a board: preprocess `image`, upload it to the external
    /// flash, and perform the first randomized boot.
    pub fn provision(
        image: &FirmwareImage,
        seed: u64,
        policy: RandomizationPolicy,
    ) -> Result<Self, MasterError> {
        Self::provision_with(image, seed, policy, Telemetry::off())
    }

    /// Like [`MavrBoard::provision`], wiring `telemetry` through the master
    /// and the application machine so the whole boot lifecycle — container
    /// read, randomize, program, watchdog arm — lands on one stream.
    pub fn provision_with(
        image: &FirmwareImage,
        seed: u64,
        policy: RandomizationPolicy,
        telemetry: Telemetry,
    ) -> Result<Self, MasterError> {
        Self::provision_chaos(
            image,
            seed,
            policy,
            telemetry,
            crate::chaos::FaultPlan::none(),
        )
    }

    /// Like [`MavrBoard::provision_with`], with a fault plan installed on
    /// the master *before* the first boot — so chaos campaigns stress the
    /// provisioning reflash too, not just recoveries.
    pub fn provision_chaos(
        image: &FirmwareImage,
        seed: u64,
        policy: RandomizationPolicy,
        telemetry: Telemetry,
        chaos: crate::chaos::FaultPlan,
    ) -> Result<Self, MasterError> {
        let container = mavr::preprocess(image).map_err(|e| {
            MasterError::Flash(crate::ext_flash::FlashError::Corrupt(e.to_string()))
        })?;
        let mut ext_flash = ExternalFlash::new();
        ext_flash.upload(&container)?;
        let mut master = MasterProcessor::new(seed, policy);
        master.telemetry = telemetry.clone();
        master.chaos = chaos;
        let mut app = AppProcessor::new();
        app.machine.telemetry = telemetry.clone();
        if telemetry.is_active() {
            // Flight recorder on => keep an execution trail for forensics.
            app.machine.enable_trace(64);
        }
        let report = master.boot(&ext_flash, &mut app, false)?;
        let mut board = MavrBoard {
            master,
            app,
            ext_flash,
            events: Vec::new(),
            heartbeat_timeout: 1_000_000,
            last_crash: None,
            forensic_annotations: Vec::new(),
            telemetry,
            watch_since: 0,
        };
        board.watch_since = board.app.machine.cycles();
        board.arm_watch();
        board.events.push(BoardEvent::Boot {
            boot: board.master.boot_count(),
            report,
        });
        Ok(board)
    }

    /// Emit the "watchdog armed" event for the current watch window.
    fn arm_watch(&self) {
        let (since, timeout) = (self.watch_since, self.heartbeat_timeout);
        self.telemetry.emit("board.watch_armed", Some(since), || {
            vec![("heartbeat_timeout", Value::U64(timeout))]
        });
    }

    /// What the master's timing analysis sees right now.
    fn detect(&self) -> Option<RecoveryCause> {
        if let Some(f) = self.app.machine.fault() {
            return Some(RecoveryCause::Fault(f));
        }
        let now = self.app.machine.cycles();
        match self
            .app
            .machine
            .heartbeat
            .last_toggle()
            .filter(|&t| t >= self.watch_since)
        {
            Some(last) if now.saturating_sub(last) <= self.heartbeat_timeout => None,
            Some(_) => Some(RecoveryCause::HeartbeatLost),
            None if now.saturating_sub(self.watch_since) > self.heartbeat_timeout => {
                Some(RecoveryCause::HeartbeatLost)
            }
            None => None,
        }
    }

    /// Advance the application processor by `cycles`, with the master
    /// watching; on a detected failed attack the board resets,
    /// re-randomizes and reflashes, then keeps running.
    pub fn run(&mut self, cycles: u64) -> Result<(), MasterError> {
        let target = self.app.machine.cycles().saturating_add(cycles);
        while self.app.machine.cycles() < target {
            let chunk = (self.heartbeat_timeout / 4)
                .min(target - self.app.machine.cycles())
                .max(1);
            let _ = self.app.machine.run(chunk);
            if let Some(cause) = self.detect() {
                self.recover(cause)?;
            }
        }
        Ok(())
    }

    /// Recovery path (§V-C): reset the application processor, re-randomize,
    /// reflash. The dead machine's post-mortem is captured into
    /// [`MavrBoard::last_crash`] *before* the reflash destroys the evidence.
    pub fn recover(&mut self, cause: RecoveryCause) -> Result<StartupReport, MasterError> {
        // The real master only ever sees heartbeat silence (§V-A2); the
        // simulator's fault, when there is one, is the omniscient view and
        // arrives separately as a `sim.fault` event from the machine itself.
        let now = self.app.machine.cycles();
        self.telemetry.emit("board.heartbeat_miss", Some(now), || {
            vec![("cause", Value::Str(format!("{cause:?}")))]
        });
        self.last_crash = Some(CrashReport::capture(
            &self.app.machine,
            self.master.last_image.as_ref(),
            &self.forensic_annotations,
        ));
        let report = self.master.boot(&self.ext_flash, &mut self.app, true)?;
        self.watch_since = self.app.machine.cycles();
        self.arm_watch();
        let boot = self.master.boot_count();
        self.telemetry.emit("board.recovery", Some(now), || {
            vec![
                ("boot", Value::U64(u64::from(boot))),
                ("cause", Value::Str(format!("{cause:?}"))),
                ("rerandomized", Value::Bool(report.randomized)),
            ]
        });
        self.events.push(BoardEvent::Recovery {
            cause,
            boot,
            at_cycle: now,
        });
        self.events.push(BoardEvent::Boot { boot, report });
        Ok(report)
    }

    /// A normal power-cycle: the master runs its boot path, re-randomizing
    /// if the policy's period has elapsed.
    pub fn reboot(&mut self) -> Result<StartupReport, MasterError> {
        let report = self.master.boot(&self.ext_flash, &mut self.app, false)?;
        self.watch_since = self.app.machine.cycles();
        self.arm_watch();
        self.events.push(BoardEvent::Boot {
            boot: self.master.boot_count(),
            report,
        });
        Ok(report)
    }

    /// Number of recoveries so far.
    pub fn recoveries(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, BoardEvent::Recovery { .. }))
            .count()
    }

    /// Detection cycle of every recovery, in event order.
    pub fn recovery_cycles(&self) -> Vec<u64> {
        self.events
            .iter()
            .filter_map(|e| match e {
                BoardEvent::Recovery { at_cycle, .. } => Some(*at_cycle),
                _ => None,
            })
            .collect()
    }

    /// Ground-station side: send bytes to the UAV.
    pub fn uplink(&mut self, bytes: &[u8]) {
        self.app.machine.uart0.inject(bytes);
    }

    /// Ground-station side: drain telemetry from the UAV.
    pub fn downlink(&mut self) -> Vec<u8> {
        self.app.machine.uart0.take_tx()
    }

    /// The attacker's view of the application processor's flash — all
    /// `0xff` thanks to the readout-protection fuse.
    pub fn attacker_flash_view(&self) -> Vec<u8> {
        self.app.external_flash_read()
    }

    /// Capture everything that determines the board's future: the complete
    /// application machine, the lock fuse, the master's entropy stream and
    /// wear ledger, and the heartbeat watch window.
    ///
    /// Diagnostics — the event log, `last_crash`, `last_permutation`,
    /// `last_image` — are deliberately *not* captured: they describe the
    /// past, not the future, and restoring them onto a board that has its
    /// own history would lie about that history. A board restored from this
    /// state executes identically to the saved one forever (including the
    /// permutations drawn by later recoveries), but its diagnostic log
    /// starts from the restore point.
    pub fn capture_state(&self) -> BoardState {
        BoardState {
            app: self.app.machine.capture_state(),
            app_locked: self.app.locked(),
            master_rng: self.master.rng_state(),
            boot_count: self.master.boot_count(),
            wear_cycles: self.master.wear.cycles_used,
            watch_since: self.watch_since,
            heartbeat_timeout: self.heartbeat_timeout,
            chaos: self.master.chaos.state(),
            reflash_retries: self.master.resilience.reflash_retries,
            degraded_boots: self.master.resilience.degraded_boots,
        }
    }

    /// Restore a state captured by [`MavrBoard::capture_state`] onto a
    /// board provisioned from the *same container image* (the external
    /// flash is immutable, so it is not part of the snapshot).
    pub fn restore_state(&mut self, s: &BoardState) {
        self.app.machine.restore_state(&s.app);
        self.app.restore_lock_fuse(s.app_locked);
        self.master.restore_entropy(s.master_rng, s.boot_count);
        self.master.wear.cycles_used = s.wear_cycles;
        self.watch_since = s.watch_since;
        self.heartbeat_timeout = s.heartbeat_timeout;
        self.master.chaos.restore_state(&s.chaos);
        self.master.resilience.reflash_retries = s.reflash_retries;
        self.master.resilience.degraded_boots = s.degraded_boots;
    }
}

/// Serializable snapshot of a [`MavrBoard`]'s execution-determining state.
///
/// See [`MavrBoard::capture_state`] for the exact contract (diagnostics
/// excluded; restore requires a board provisioned from the same container).
#[derive(Debug, Clone, PartialEq)]
pub struct BoardState {
    /// The application processor's machine state.
    pub app: MachineState,
    /// Whether the readout-protection fuse is set.
    pub app_locked: bool,
    /// The master's RNG stream position.
    pub master_rng: [u64; 4],
    /// The master's boot counter.
    pub boot_count: u32,
    /// Application-flash program cycles consumed.
    pub wear_cycles: u32,
    /// Start of the current heartbeat watch window (app cycles).
    pub watch_since: u64,
    /// Heartbeat-silence threshold in cycles.
    pub heartbeat_timeout: u64,
    /// The fault plan's RNG position and injection counter. Restore
    /// requires a board built with the same [`crate::chaos::ChaosConfig`]
    /// (configuration, like the container, is construction-time input).
    pub chaos: crate::chaos::ChaosState,
    /// The master's lifetime reflash-retry counter.
    pub reflash_retries: u64,
    /// The master's lifetime degraded-boot counter.
    pub degraded_boots: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mavlink_lite::GroundStation;
    use rop::attack::AttackContext;
    use synth_firmware::{apps, build, layout as l, BuildOptions};

    fn vulnerable_board() -> (MavrBoard, FirmwareImage) {
        let fw = build(&apps::tiny_test_app(), &BuildOptions::vulnerable_mavr()).unwrap();
        let board =
            MavrBoard::provision(&fw.image, 0xda7a, RandomizationPolicy::default()).unwrap();
        (board, fw.image)
    }

    #[test]
    fn healthy_board_runs_without_recoveries() {
        let (mut board, _) = vulnerable_board();
        board.run(3_000_000).unwrap();
        assert_eq!(board.recoveries(), 0);
        let mut gcs = GroundStation::new();
        gcs.ingest(&board.downlink());
        assert!(gcs.heartbeats.len() > 10);
        assert_eq!(gcs.bad_checksums(), 0);
    }

    #[test]
    fn readout_protection_blocks_attacker() {
        let (board, image) = vulnerable_board();
        let view = board.attacker_flash_view();
        assert!(view.iter().all(|&b| b == 0xff));
        assert_ne!(
            &board.app.machine.flash()[..image.bytes.len()],
            &image.bytes[..]
        );
    }

    #[test]
    fn attack_against_randomized_board_fails_and_recovers() {
        // The paper's §VII-A effectiveness experiment, end to end: the
        // attacker crafts the stealthy attack against the *unprotected*
        // binary. Against a randomized board the chain lands in the wrong
        // code: the attack NEVER succeeds, and in a majority of layouts the
        // board visibly executes garbage, which the master detects before
        // resetting, re-randomizing and reflashing.
        let fw = build(&apps::tiny_test_app(), &BuildOptions::vulnerable_mavr()).unwrap();
        let ctx = AttackContext::discover(&fw.image).unwrap();
        let payload = ctx
            .v2_payload(&[(l::GYRO + 3, [0xde, 0xad, 0x42])])
            .unwrap();
        let mut detections = 0;
        let mut recovered_board = None;
        for seed in 0..6u64 {
            let mut board =
                MavrBoard::provision(&fw.image, seed, RandomizationPolicy::default()).unwrap();
            board.run(300_000).unwrap();
            let mut gcs = GroundStation::new();
            board.uplink(&gcs.exploit_packet(&payload).unwrap());
            board.run(6_000_000).unwrap();
            // The sensor is NEVER set to the attacker's values.
            assert_ne!(
                board.app.machine.peek_range(l::GYRO + 3, 3),
                vec![0xde, 0xad, 0x42],
                "seed {seed}: attack must not succeed against randomized code"
            );
            if board.recoveries() >= 1 {
                detections += 1;
                recovered_board = Some(board);
            }
        }
        assert!(
            detections >= 2,
            "the master should catch failed attacks often (got {detections}/6)"
        );
        // A recovered board is healthy again: fresh telemetry, no further
        // recoveries.
        let mut board = recovered_board.unwrap();
        let before = board.recoveries();
        let _ = board.downlink();
        board.run(2_000_000).unwrap();
        assert_eq!(board.recoveries(), before);
        let mut gcs = GroundStation::new();
        gcs.ingest(&board.downlink());
        assert!(gcs.heartbeats.len() > 5, "telemetry resumed after reflash");
    }

    #[test]
    fn sustained_attack_campaign_never_succeeds() {
        // §V-D: "to defeat MAVR an attacker would need to dynamically
        // construct a new exploit for not only every instance of every
        // application but also for every attack." Fire the payload
        // repeatedly; every failure that crashes gets a *fresh* permutation,
        // the attack never lands, and the wear ledger records each reflash.
        let fw = build(&apps::tiny_test_app(), &BuildOptions::vulnerable_mavr()).unwrap();
        let ctx = AttackContext::discover(&fw.image).unwrap();
        let payload = ctx
            .v2_payload(&[(l::GYRO + 3, [0xde, 0xad, 0x42])])
            .unwrap();
        // Every-boot randomization: each power cycle rotates the layout,
        // so the attacker faces a fresh permutation every round even when
        // the previous failure soft-landed without a crash.
        let policy = RandomizationPolicy {
            every_n_boots: 1,
            on_attack: true,
        };
        let mut board = MavrBoard::provision(&fw.image, 0xc4a9, policy).unwrap();
        let mut gcs = GroundStation::new();
        let mut permutations = vec![board.master.last_permutation.clone().unwrap()];
        let rounds = 8;
        for round in 0..rounds {
            board.run(300_000).unwrap();
            board.uplink(&gcs.exploit_packet(&payload).unwrap());
            board.run(5_000_000).unwrap();
            assert_ne!(
                board.app.machine.peek_range(l::GYRO + 3, 3),
                vec![0xde, 0xad, 0x42],
                "round {round}: attack must never land"
            );
            let perm = board.master.last_permutation.clone().unwrap();
            if perm != *permutations.last().unwrap() {
                permutations.push(perm);
            }
            board.reboot().unwrap();
        }
        let recoveries = board.recoveries();
        assert!(recoveries >= 1, "campaign should trip the watchdog");
        // Wear ledger: initial boot + reboots + one program per recovery.
        assert_eq!(
            board.master.wear.cycles_used as usize,
            1 + rounds + recoveries
        );
        // The board is still flying after the whole campaign.
        let _ = board.downlink();
        board.run(1_500_000).unwrap();
        let mut gcs2 = GroundStation::new();
        gcs2.ingest(&board.downlink());
        assert!(gcs2.heartbeats.len() > 5);
    }

    #[test]
    fn recovery_uses_fresh_permutation() {
        let (mut board, _) = vulnerable_board();
        let perm1 = board.master.last_permutation.clone().unwrap();
        board.recover(RecoveryCause::HeartbeatLost).unwrap();
        let perm2 = board.master.last_permutation.clone().unwrap();
        assert_ne!(perm1, perm2, "every recovery draws a new permutation");
        board.run(1_500_000).unwrap();
        assert_eq!(board.recoveries(), 1, "board healthy after recovery");
    }

    #[test]
    fn telemetry_stream_and_crash_capture_on_recovery() {
        use telemetry::RingRecorder;
        let fw = build(&apps::tiny_test_app(), &BuildOptions::vulnerable_mavr()).unwrap();
        let t = Telemetry::new(RingRecorder::new(256));
        let mut board =
            MavrBoard::provision_with(&fw.image, 0xda7a, RandomizationPolicy::default(), t.clone())
                .unwrap();
        board.run(300_000).unwrap();
        assert!(board.last_crash.is_none());
        board.recover(RecoveryCause::HeartbeatLost).unwrap();
        let crash = board.last_crash.as_ref().expect("post-mortem captured");
        assert!(
            !crash.trail.is_empty(),
            "provision_with enables tracing, so the trail is populated"
        );
        assert!(
            crash.trail.iter().any(|a| a.symbol.is_some()),
            "randomized symbol map attributes the trail"
        );
        let kinds: Vec<&'static str> = t
            .with_recorder::<RingRecorder, _>(|r| r.events().map(|e| e.kind).collect())
            .unwrap();
        for expected in [
            "master.boot",
            "master.container_read",
            "master.randomize",
            "master.programmed",
            "board.watch_armed",
            "board.heartbeat_miss",
            "board.recovery",
        ] {
            assert!(kinds.contains(&expected), "missing {expected} in {kinds:?}");
        }
    }

    #[test]
    fn restored_board_continues_identically() {
        // Snapshot a board mid-attack (payload injected, crash brewing),
        // restore onto a freshly provisioned board with a *different* seed,
        // and run both through the crash and the master's recovery: every
        // future — including the re-randomization permutations drawn by the
        // restored entropy stream — must match the original exactly.
        let fw = build(&apps::tiny_test_app(), &BuildOptions::vulnerable_mavr()).unwrap();
        let ctx = AttackContext::discover(&fw.image).unwrap();
        let payload = ctx
            .v2_payload(&[(l::GYRO + 3, [0xde, 0xad, 0x42])])
            .unwrap();
        let mut original =
            MavrBoard::provision(&fw.image, 0x5eed, RandomizationPolicy::default()).unwrap();
        original.run(300_000).unwrap();
        let mut gcs = GroundStation::new();
        original.uplink(&gcs.exploit_packet(&payload).unwrap());
        original.run(500_000).unwrap();
        let state = original.capture_state();

        let mut restored =
            MavrBoard::provision(&fw.image, 0xffff, RandomizationPolicy::default()).unwrap();
        restored.restore_state(&state);
        assert_eq!(restored.app.machine.capture_state(), state.app);

        original.run(6_000_000).unwrap();
        restored.run(6_000_000).unwrap();
        assert_eq!(
            original.app.machine.capture_state(),
            restored.app.machine.capture_state(),
            "restored board must continue lockstep with the original"
        );
        assert_eq!(original.master.rng_state(), restored.master.rng_state());
        assert_eq!(original.master.boot_count(), restored.master.boot_count());
        assert_eq!(
            original.master.wear.cycles_used,
            restored.master.wear.cycles_used
        );
    }

    #[test]
    fn restored_chaos_board_replays_the_same_faults() {
        // The fault plan's RNG rides in the board snapshot: a board
        // restored mid-campaign must draw the exact fault sequence the
        // original would, so checkpointed chaos campaigns stay
        // byte-identical.
        use crate::chaos::{ChaosConfig, FaultPlan};
        let fw = build(&apps::tiny_test_app(), &BuildOptions::vulnerable_mavr()).unwrap();
        let cfg = ChaosConfig::uniform(0.0002);
        // Provision clean (a bricked first boot would end the test before
        // it starts), then turn the faults on for the recovery rounds.
        let mk = || {
            let mut board =
                MavrBoard::provision(&fw.image, 0xda7a, RandomizationPolicy::default()).unwrap();
            board.master.chaos = FaultPlan::new(5, cfg);
            board
        };
        let mut original = mk();
        original.run(300_000).unwrap();
        let _ = original.recover(RecoveryCause::HeartbeatLost);
        let state = original.capture_state();

        let mut restored = mk();
        restored.restore_state(&state);
        assert_eq!(restored.capture_state(), state);

        for round in 0..4 {
            let a = original.recover(RecoveryCause::HeartbeatLost);
            let b = restored.recover(RecoveryCause::HeartbeatLost);
            assert_eq!(a, b, "round {round}: outcomes diverged");
            assert_eq!(
                original.capture_state(),
                restored.capture_state(),
                "round {round}: states diverged"
            );
        }
        assert_eq!(
            original.master.resilience, restored.master.resilience,
            "retry/degrade counters ride in the snapshot"
        );
    }

    #[test]
    fn event_log_records_boots_and_recoveries() {
        let (mut board, _) = vulnerable_board();
        assert!(matches!(board.events[0], BoardEvent::Boot { boot: 1, .. }));
        board.recover(RecoveryCause::HeartbeatLost).unwrap();
        assert!(board
            .events
            .iter()
            .any(|e| matches!(e, BoardEvent::Recovery { boot: 2, .. })));
    }
}
