//! Deterministic fault injection for the recovery pipeline.
//!
//! The paper's defense rests entirely on the master's recovery loop —
//! detect, re-randomize, reflash over the serial bootloader — so that loop
//! must survive the faults real hardware throws at it: bit flips and lost
//! frames on the serial link, bit rot in the external SPI flash, and power
//! loss halfway through programming the app processor. This module models
//! those faults as a seeded [`FaultPlan`] that the master consults at each
//! stage of [`crate::MasterProcessor::boot`]. Every draw comes from a
//! dedicated xoshiro256++ stream, so a fault campaign is exactly
//! reproducible from `(seed, config)` and the plan's RNG position can be
//! checkpointed into board snapshots.
//!
//! A plan whose every rate is zero is *inert*: it never touches the RNG and
//! never copies data, so chaos-free boots behave byte-for-byte like the
//! pre-chaos pipeline.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-surface fault probabilities. All values are probabilities in
/// `[0, 1]`; the unit each applies to is documented per field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Per-byte probability of a single-bit flip in the bootloader serial
    /// stream.
    pub stream_bit_flip: f64,
    /// Per-frame probability that a protocol frame is dropped in transit.
    pub stream_drop_frame: f64,
    /// Per-frame probability that a frame arrives twice.
    pub stream_dup_frame: f64,
    /// Per-frame probability that a frame is swapped with its successor
    /// (reordered delivery).
    pub stream_reorder_frame: f64,
    /// Per-stream probability that the transfer is cut short at a random
    /// byte (cable yanked, UART reset).
    pub stream_truncate: f64,
    /// Per-byte probability of a bit-rot flip observed on each external
    /// flash read. Rot is transient per read — a retry re-rolls it — which
    /// models marginal cells read near the sense threshold.
    pub flash_bit_rot: f64,
    /// Per-read probability that one byte of the container reads back stuck
    /// at `0x00` or `0xff`.
    pub flash_stuck_byte: f64,
    /// Per-commit probability that power is lost mid-reflash: a random
    /// suffix of the staged pages never reaches app flash and the lock fuse
    /// is left clear.
    pub power_loss: f64,
    /// Per-page probability that a page write is partial: a tail of the
    /// page keeps its erased `0xff` state.
    pub partial_page: f64,
}

impl ChaosConfig {
    /// A configuration that injects nothing.
    pub const fn off() -> Self {
        ChaosConfig {
            stream_bit_flip: 0.0,
            stream_drop_frame: 0.0,
            stream_dup_frame: 0.0,
            stream_reorder_frame: 0.0,
            stream_truncate: 0.0,
            flash_bit_rot: 0.0,
            flash_stuck_byte: 0.0,
            power_loss: 0.0,
            partial_page: 0.0,
        }
    }

    /// Map a single campaign-level fault rate onto every surface.
    ///
    /// `rate` is the per-byte corruption probability; event-level faults
    /// (frame drops, power loss, …) scale up from it so that a sweep over
    /// one scalar exercises every failure path. `uniform(0.0)` equals
    /// [`ChaosConfig::off`].
    pub fn uniform(rate: f64) -> Self {
        let p = |x: f64| x.clamp(0.0, 1.0);
        ChaosConfig {
            stream_bit_flip: p(rate),
            stream_drop_frame: p(rate * 16.0),
            stream_dup_frame: p(rate * 16.0),
            stream_reorder_frame: p(rate * 16.0),
            stream_truncate: p(rate * 32.0),
            flash_bit_rot: p(rate / 4.0),
            flash_stuck_byte: p(rate * 16.0),
            power_loss: p(rate * 32.0),
            partial_page: p(rate * 16.0),
        }
    }

    /// Whether any fault can ever fire under this configuration.
    pub fn is_active(&self) -> bool {
        self.stream_bit_flip > 0.0
            || self.stream_drop_frame > 0.0
            || self.stream_dup_frame > 0.0
            || self.stream_reorder_frame > 0.0
            || self.stream_truncate > 0.0
            || self.flash_bit_rot > 0.0
            || self.flash_stuck_byte > 0.0
            || self.power_loss > 0.0
            || self.partial_page > 0.0
    }
}

/// Lifetime counters of faults the master's recovery pipeline survived.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Reflash retries: failed transfers, page-repair rounds, and
    /// container re-reads.
    pub reflash_retries: u64,
    /// Boots that fell back to degraded safe mode (last-known-good image,
    /// no fresh randomization).
    pub degraded_boots: u64,
}

/// Snapshot of a [`FaultPlan`]'s mutable state, for board checkpoints.
///
/// The configuration itself is construction-time input (like the container
/// in external flash) and is the restorer's responsibility to reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosState {
    /// Raw xoshiro256++ state words of the fault stream.
    pub rng: [u64; 4],
    /// Total faults injected so far.
    pub injected: u64,
}

/// A seeded source of faults for one board's recovery pipeline.
///
/// The plan owns its own RNG stream, separate from the master's
/// randomization entropy, so injecting (or not injecting) faults never
/// perturbs which permutations the defense picks.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    config: ChaosConfig,
    rng: StdRng,
    injected: u64,
}

impl FaultPlan {
    /// An inert plan: no fault ever fires and the RNG is never consumed.
    pub fn none() -> Self {
        FaultPlan::new(0, ChaosConfig::off())
    }

    /// A plan drawing faults from the given seed at the given rates.
    pub fn new(seed: u64, config: ChaosConfig) -> Self {
        FaultPlan {
            config,
            rng: StdRng::seed_from_u64(seed),
            injected: 0,
        }
    }

    /// The configured fault rates.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// Whether this plan can ever inject a fault.
    pub fn is_active(&self) -> bool {
        self.config.is_active()
    }

    /// Total faults injected so far (all surfaces).
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Capture the mutable state for a board snapshot.
    pub fn state(&self) -> ChaosState {
        ChaosState {
            rng: self.rng.state(),
            injected: self.injected,
        }
    }

    /// Restore the mutable state captured by [`FaultPlan::state`].
    pub fn restore_state(&mut self, s: &ChaosState) {
        self.rng = StdRng::from_state(s.rng);
        self.injected = s.injected;
    }

    /// Flip one random bit in each byte selected at probability `p`.
    fn rot_bytes(&mut self, bytes: &mut [u8], p: f64) {
        if p <= 0.0 {
            return;
        }
        for b in bytes.iter_mut() {
            if self.rng.random_bool(p) {
                *b ^= 1 << self.rng.random_range(0..8u32);
                self.injected += 1;
            }
        }
    }

    /// Corrupt one external-flash read. Applied to a transient copy of the
    /// chip contents: the stored container is not rewritten, so a retry
    /// observes freshly rolled rot.
    pub fn mangle_flash_read(&mut self, bytes: &mut [u8]) {
        if !self.is_active() || bytes.is_empty() {
            return;
        }
        self.rot_bytes(bytes, self.config.flash_bit_rot);
        if self.config.flash_stuck_byte > 0.0 && self.rng.random_bool(self.config.flash_stuck_byte)
        {
            let at = self.rng.random_range(0..bytes.len());
            bytes[at] = if self.rng.random_bool(0.5) {
                0x00
            } else {
                0xff
            };
            self.injected += 1;
        }
    }

    /// Corrupt one bootloader transfer. The input is the master's
    /// well-formed frame stream; the output is what the app-side decoder
    /// actually receives: frames may be dropped, duplicated or swapped,
    /// bytes may take bit flips, and the whole stream may be cut short.
    pub fn mangle_stream(&mut self, stream: &[u8]) -> Vec<u8> {
        if !self.is_active() {
            return stream.to_vec();
        }
        let frames = split_frames(stream);
        let mut kept: Vec<&[u8]> = Vec::with_capacity(frames.len() + 2);
        for f in &frames {
            if self.config.stream_drop_frame > 0.0
                && self.rng.random_bool(self.config.stream_drop_frame)
            {
                self.injected += 1;
                continue;
            }
            kept.push(f);
            if self.config.stream_dup_frame > 0.0
                && self.rng.random_bool(self.config.stream_dup_frame)
            {
                kept.push(f);
                self.injected += 1;
            }
        }
        if self.config.stream_reorder_frame > 0.0 {
            let mut i = 0;
            while i + 1 < kept.len() {
                if self.rng.random_bool(self.config.stream_reorder_frame) {
                    kept.swap(i, i + 1);
                    self.injected += 1;
                    i += 2; // a swapped pair is delivered; move past it
                } else {
                    i += 1;
                }
            }
        }
        let mut out: Vec<u8> = kept.concat();
        self.rot_bytes(&mut out, self.config.stream_bit_flip);
        if self.config.stream_truncate > 0.0
            && !out.is_empty()
            && self.rng.random_bool(self.config.stream_truncate)
        {
            out.truncate(self.rng.random_range(0..out.len()));
            self.injected += 1;
        }
        out
    }

    /// Power-loss decision for one flash commit of `pages` staged pages:
    /// `Some(k)` means the supply dropped after `k` pages were written and
    /// nothing after them (including the lock fuse) took effect.
    pub fn power_loss_cut(&mut self, pages: usize) -> Option<usize> {
        if self.config.power_loss > 0.0 && pages > 0 && self.rng.random_bool(self.config.power_loss)
        {
            self.injected += 1;
            Some(self.rng.random_range(0..pages))
        } else {
            None
        }
    }

    /// Partial-write decision for one page of `len` bytes: `Some(k)` means
    /// only the first `k` bytes latched and the tail kept its erased state.
    pub fn partial_page_len(&mut self, len: usize) -> Option<usize> {
        if self.config.partial_page > 0.0
            && len > 0
            && self.rng.random_bool(self.config.partial_page)
        {
            self.injected += 1;
            Some(self.rng.random_range(0..len))
        } else {
            None
        }
    }
}

/// Split a well-formed bootloader stream into frames on the wire framing
/// (start byte, sequence, big-endian length). Trailing bytes that do not
/// form a whole frame are kept as a final pseudo-frame so mangling never
/// silently discards input.
fn split_frames(stream: &[u8]) -> Vec<&[u8]> {
    let mut frames = Vec::new();
    let mut i = 0;
    while i < stream.len() {
        if stream.len() - i >= 6 && stream[i] == crate::bootloader::MESSAGE_START {
            let len = u16::from_be_bytes([stream[i + 2], stream[i + 3]]) as usize;
            let total = 6 + len;
            if stream.len() - i >= total {
                frames.push(&stream[i..i + total]);
                i += total;
                continue;
            }
        }
        frames.push(&stream[i..]);
        break;
    }
    frames
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy() -> ChaosConfig {
        ChaosConfig::uniform(0.002)
    }

    #[test]
    fn inert_plan_changes_nothing_and_holds_rng_still() {
        let mut plan = FaultPlan::none();
        let before = plan.state();
        let stream = crate::bootloader::programming_stream(&[0xab; 1024], 256);
        assert_eq!(plan.mangle_stream(&stream), stream);
        let mut bytes = vec![0x55u8; 4096];
        plan.mangle_flash_read(&mut bytes);
        assert!(bytes.iter().all(|&b| b == 0x55));
        assert_eq!(plan.power_loss_cut(16), None);
        assert_eq!(plan.partial_page_len(256), None);
        assert_eq!(plan.state(), before);
        assert_eq!(plan.injected(), 0);
    }

    #[test]
    fn same_seed_same_faults() {
        let stream = crate::bootloader::programming_stream(&[0x5a; 4096], 256);
        let mut a = FaultPlan::new(99, noisy());
        let mut b = FaultPlan::new(99, noisy());
        for _ in 0..8 {
            assert_eq!(a.mangle_stream(&stream), b.mangle_stream(&stream));
        }
        assert_eq!(a.state(), b.state());

        let mut c = FaultPlan::new(100, noisy());
        let differs = (0..8).any(|_| {
            let x = a.mangle_stream(&stream);
            let y = c.mangle_stream(&stream);
            x != y
        });
        assert!(differs, "different seeds should mangle differently");
    }

    #[test]
    fn restored_plan_continues_the_exact_sequence() {
        let stream = crate::bootloader::programming_stream(&[0x13; 2048], 256);
        let mut plan = FaultPlan::new(7, noisy());
        plan.mangle_stream(&stream);
        let mid = plan.state();
        let next = plan.mangle_stream(&stream);

        let mut resumed = FaultPlan::new(7, noisy());
        resumed.restore_state(&mid);
        assert_eq!(resumed.mangle_stream(&stream), next);
    }

    #[test]
    fn frame_splitter_round_trips_a_real_stream() {
        let stream = crate::bootloader::programming_stream(&[0x77; 2048], 256);
        let frames = split_frames(&stream);
        assert!(frames.len() > 8, "expected one frame per page plus control");
        let rejoined: Vec<u8> = frames.concat();
        assert_eq!(rejoined, stream);
    }

    #[test]
    fn heavy_chaos_eventually_hits_every_surface() {
        let cfg = ChaosConfig::uniform(0.02);
        let mut plan = FaultPlan::new(3, cfg);
        let stream = crate::bootloader::programming_stream(&[0xc3; 4096], 256);
        let mut mangled = 0;
        let mut cuts = 0;
        let mut partials = 0;
        for _ in 0..64 {
            if plan.mangle_stream(&stream) != stream {
                mangled += 1;
            }
            if plan.power_loss_cut(16).is_some() {
                cuts += 1;
            }
            if plan.partial_page_len(256).is_some() {
                partials += 1;
            }
        }
        assert!(mangled > 0 && cuts > 0 && partials > 0);
        assert!(plan.injected() > 0);
    }
}
