//! The serial programming protocol between the master and the application
//! processor's bootloader (§VI-B4).
//!
//! "The ATmega2560 processor is commonly fitted with a boot loading
//! functionality that works over its primary asynchronous serial port …
//! invoked by briefly asserting the RESET line and sending a specific byte
//! sequence within a few milliseconds after boot. The randomized binary is
//! then incrementally transferred; the bootloader performs the work of
//! writing the data to the non-volatile program memory."
//!
//! The framing follows the STK500v2 shape (start byte, sequence number,
//! length, token, body, XOR checksum); the command set is the subset the
//! MAVR master needs: sign-on, chip erase, load-address, program-page,
//! set-lock-fuse, leave-progmode.

use crate::app::AppProcessor;

/// Frame start byte (`MESSAGE_START`).
pub const MESSAGE_START: u8 = 0x1b;
/// Frame token byte.
pub const TOKEN: u8 = 0x0e;

/// Command ids (STK500v2-inspired).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Command {
    SignOn = 0x01,
    ChipErase = 0x12,
    LoadAddress = 0x06,
    ProgramPage = 0x13,
    SetLockFuse = 0x20,
    LeaveProgmode = 0x11,
}

/// Errors from the app-side decoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// A frame checksum failed.
    BadChecksum {
        /// Sequence number of the offending frame.
        seq: u8,
    },
    /// Unknown command byte.
    UnknownCommand(u8),
    /// A page write was attempted without a prior load-address.
    NoAddress,
    /// A page write ran past the end of flash.
    AddressOutOfRange {
        /// Offending byte address.
        addr: u32,
    },
    /// A frame arrived out of order or twice: the sequence number did not
    /// match the decoder's expectation. A dropped-then-duplicated frame
    /// must not double-program a page, so the decoder refuses rather than
    /// guessing.
    BadSequence {
        /// Sequence number the decoder expected next.
        expected: u8,
        /// Sequence number the frame carried.
        got: u8,
    },
    /// The stream ended mid-frame.
    Truncated,
}

impl ProtocolError {
    /// The sequence number of the offending frame, where the error has one.
    pub fn sequence(&self) -> Option<u8> {
        match self {
            ProtocolError::BadChecksum { seq } => Some(*seq),
            ProtocolError::BadSequence { got, .. } => Some(*got),
            _ => None,
        }
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::BadChecksum { seq } => write!(f, "frame {seq}: checksum mismatch"),
            ProtocolError::UnknownCommand(c) => write!(f, "unknown command {c:#04x}"),
            ProtocolError::NoAddress => write!(f, "program-page before load-address"),
            ProtocolError::AddressOutOfRange { addr } => {
                write!(f, "page write at {addr:#x} past end of flash")
            }
            ProtocolError::BadSequence { expected, got } => {
                write!(
                    f,
                    "frame {got}: out of order (expected sequence {expected})"
                )
            }
            ProtocolError::Truncated => write!(f, "stream truncated mid-frame"),
        }
    }
}

impl std::error::Error for ProtocolError {}

fn frame(seq: u8, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 6);
    out.push(MESSAGE_START);
    out.push(seq);
    out.push((body.len() >> 8) as u8);
    out.push((body.len() & 0xff) as u8);
    out.push(TOKEN);
    out.extend_from_slice(body);
    let checksum = out.iter().fold(0u8, |a, &b| a ^ b);
    out.push(checksum);
    out
}

/// Master side: build the complete programming byte stream for `binary`.
///
/// Pages stream in address order; the lock fuse is set after the last page,
/// then the bootloader is told to leave and run the application — the exact
/// sequence of §VI (flash, fuse, release).
pub fn programming_stream(binary: &[u8], page_size: usize) -> Vec<u8> {
    let mut out = Vec::new();
    let mut seq = 0u8;
    let push = |body: &[u8], seq: &mut u8| {
        let f = frame(*seq, body);
        *seq = seq.wrapping_add(1);
        f
    };
    out.extend(push(&[Command::SignOn as u8], &mut seq));
    out.extend(push(&[Command::ChipErase as u8], &mut seq));
    for (i, page) in binary.chunks(page_size).enumerate() {
        let addr = (i * page_size) as u32;
        let mut body = vec![Command::LoadAddress as u8];
        body.extend_from_slice(&addr.to_be_bytes());
        out.extend(push(&body, &mut seq));
        let mut body = vec![Command::ProgramPage as u8];
        body.extend_from_slice(page);
        out.extend(push(&body, &mut seq));
    }
    out.extend(push(&[Command::SetLockFuse as u8], &mut seq));
    out.extend(push(&[Command::LeaveProgmode as u8], &mut seq));
    out
}

/// Master side: build a *repair* stream that rewrites only the given pages.
///
/// Unlike [`programming_stream`] there is no chip erase — the pages that
/// verified clean are left untouched — but the lock fuse and leave-progmode
/// tail are identical, so the part ends up locked and running. Sequence
/// numbers start at zero: each transfer is its own session to the decoder.
pub fn repair_stream(pages: &[(u32, &[u8])]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut seq = 0u8;
    let push = |body: &[u8], seq: &mut u8| {
        let f = frame(*seq, body);
        *seq = seq.wrapping_add(1);
        f
    };
    out.extend(push(&[Command::SignOn as u8], &mut seq));
    for (addr, page) in pages {
        let mut body = vec![Command::LoadAddress as u8];
        body.extend_from_slice(&addr.to_be_bytes());
        out.extend(push(&body, &mut seq));
        let mut body = vec![Command::ProgramPage as u8];
        body.extend_from_slice(page);
        out.extend(push(&body, &mut seq));
    }
    out.extend(push(&[Command::SetLockFuse as u8], &mut seq));
    out.extend(push(&[Command::LeaveProgmode as u8], &mut seq));
    out
}

/// Application side: consume a programming stream and apply it to the
/// processor. Returns the number of pages written.
pub fn apply_stream(app: &mut AppProcessor, stream: &[u8]) -> Result<usize, ProtocolError> {
    apply_stream_chaos(app, stream, &mut crate::chaos::FaultPlan::none())
}

/// [`apply_stream`] with commit-time fault injection: the given plan may
/// cut power mid-commit (a suffix of the staged pages, and the lock fuse,
/// never latch) or leave individual page writes partial. Decoding errors
/// are reported exactly as in the fault-free path; write faults are
/// *silent* — it is the master's verify-after-write readback that catches
/// them.
pub fn apply_stream_chaos(
    app: &mut AppProcessor,
    stream: &[u8],
    chaos: &mut crate::chaos::FaultPlan,
) -> Result<usize, ProtocolError> {
    let mut pos = 0usize;
    let mut address: Option<u32> = None;
    let mut pages = 0usize;
    let mut staged: Vec<(u32, Vec<u8>)> = Vec::new();
    let mut erased = false;
    let mut lock = false;
    let mut expected_seq = 0u8;
    while pos < stream.len() {
        if stream.len() - pos < 6 {
            return Err(ProtocolError::Truncated);
        }
        if stream[pos] != MESSAGE_START {
            return Err(ProtocolError::UnknownCommand(stream[pos]));
        }
        let seq = stream[pos + 1];
        let len = ((stream[pos + 2] as usize) << 8) | stream[pos + 3] as usize;
        let end = pos + 5 + len;
        if end + 1 > stream.len() {
            return Err(ProtocolError::Truncated);
        }
        let checksum = stream[pos..end].iter().fold(0u8, |a, &b| a ^ b);
        if checksum != stream[end] {
            return Err(ProtocolError::BadChecksum { seq });
        }
        // Only after the checksum clears: a flipped sequence byte is a
        // checksum failure, not a reordering.
        if seq != expected_seq {
            return Err(ProtocolError::BadSequence {
                expected: expected_seq,
                got: seq,
            });
        }
        expected_seq = expected_seq.wrapping_add(1);
        let body = &stream[pos + 5..end];
        pos = end + 1;

        match body.first().copied() {
            Some(c) if c == Command::SignOn as u8 => {}
            Some(c) if c == Command::ChipErase as u8 => {
                erased = true;
                staged.clear();
            }
            Some(c) if c == Command::LoadAddress as u8 => {
                let mut a = [0u8; 4];
                a.copy_from_slice(&body[1..5]);
                address = Some(u32::from_be_bytes(a));
            }
            Some(c) if c == Command::ProgramPage as u8 => {
                let addr = address.ok_or(ProtocolError::NoAddress)?;
                let flash_size = app.machine.device().flash_bytes;
                if addr as usize + (body.len() - 1) > flash_size as usize {
                    return Err(ProtocolError::AddressOutOfRange { addr });
                }
                staged.push((addr, body[1..].to_vec()));
                pages += 1;
                address = None;
            }
            Some(c) if c == Command::SetLockFuse as u8 => lock = true,
            Some(c) if c == Command::LeaveProgmode as u8 => {
                // Commit: erase, write all staged pages, fuse, reset.
                if erased {
                    app.chip_erase();
                }
                let flat: Vec<(u32, Vec<u8>)> = std::mem::take(&mut staged);
                let cut = chaos.power_loss_cut(flat.len());
                for (i, (addr, data)) in flat.iter().enumerate() {
                    if cut.is_some_and(|k| i >= k) {
                        break; // supply dropped; later pages never latch
                    }
                    let keep = chaos.partial_page_len(data.len()).unwrap_or(data.len());
                    app.program_page(*addr, &data[..keep]);
                }
                if lock && cut.is_none() {
                    app.set_lock_fuse();
                }
                app.machine.reset();
                app.machine.uart0.clear();
                app.machine.heartbeat.clear();
            }
            Some(other) => return Err(ProtocolError::UnknownCommand(other)),
            None => return Err(ProtocolError::Truncated),
        }
    }
    Ok(pages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use synth_firmware::{apps, build, BuildOptions};

    #[test]
    fn stream_round_trip_programs_the_part() {
        let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
        let stream = programming_stream(&fw.image.bytes, 256);
        let mut app = AppProcessor::new();
        let pages = apply_stream(&mut app, &stream).unwrap();
        assert_eq!(pages, fw.image.bytes.len().div_ceil(256));
        assert_eq!(
            &app.machine.flash()[..fw.image.bytes.len()],
            &fw.image.bytes[..]
        );
        assert!(app.locked(), "lock fuse set by the stream");
        // And it boots.
        app.machine.run(1_000_000);
        assert!(app.machine.fault().is_none());
        assert!(app.machine.heartbeat.toggles().len() > 10);
    }

    #[test]
    fn reflash_through_bootloader_invalidates_predecode_cache() {
        // Run firmware A long enough to build and use the predecode cache,
        // then push firmware B through the full bootloader stream (chip
        // erase + pages + reset). The machine must then execute B exactly
        // like a fresh, cache-less part loaded with B — any stale cache
        // entry from A would diverge the lockstep comparison.
        let fw_a = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
        let fw_b = build(&apps::tiny_test_app(), &BuildOptions::vulnerable_mavr()).unwrap();
        assert_ne!(fw_a.image.bytes, fw_b.image.bytes, "need distinct images");

        let mut app = AppProcessor::new();
        apply_stream(&mut app, &programming_stream(&fw_a.image.bytes, 256)).unwrap();
        app.machine.run(200_000);
        assert!(app.machine.fault().is_none());

        apply_stream(&mut app, &programming_stream(&fw_b.image.bytes, 256)).unwrap();

        let mut fresh = avr_sim::Machine::new_atmega2560();
        fresh.set_predecode(false);
        fresh.load_flash(0, &fw_b.image.bytes);
        let cycles0 = app.machine.cycles(); // survives reset; compare deltas
        for step in 0..50_000u32 {
            app.machine.run(1);
            fresh.run(1);
            assert_eq!(
                (
                    app.machine.pc(),
                    app.machine.sreg(),
                    app.machine.sp(),
                    app.machine.cycles() - cycles0,
                    app.machine.fault(),
                ),
                (
                    fresh.pc(),
                    fresh.sreg(),
                    fresh.sp(),
                    fresh.cycles(),
                    fresh.fault(),
                ),
                "diverged at step {step}"
            );
            if fresh.fault().is_some() {
                break;
            }
        }
    }

    #[test]
    fn reflash_through_bootloader_invalidates_block_cache() {
        // Same shape as the predecode test above, but with the block-fused
        // engine on the bootloader side: firmware A runs long enough to
        // discover and compile fused blocks, then firmware B arrives via
        // chip erase + page stream + reset. Every fused block from A must
        // be gone — the part then has to match a cache-less reference
        // executing B, single-stepped so any stale fusion shows up at the
        // exact cycle it fires.
        let fw_a = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
        let fw_b = build(&apps::tiny_test_app(), &BuildOptions::vulnerable_mavr()).unwrap();
        assert_ne!(fw_a.image.bytes, fw_b.image.bytes, "need distinct images");

        let mut app = AppProcessor::new();
        apply_stream(&mut app, &programming_stream(&fw_a.image.bytes, 256)).unwrap();
        app.machine.run(200_000);
        assert!(app.machine.fault().is_none());
        let pre_reflash = app.machine.block_stats();
        assert!(pre_reflash.hits > 0, "firmware A should run fused");

        apply_stream(&mut app, &programming_stream(&fw_b.image.bytes, 256)).unwrap();
        assert!(
            app.machine.block_stats().invalidations > pre_reflash.invalidations,
            "chip erase must invalidate firmware A's fused blocks"
        );

        let mut fresh = avr_sim::Machine::new_atmega2560();
        fresh.set_predecode(false);
        fresh.load_flash(0, &fw_b.image.bytes);
        let cycles0 = app.machine.cycles(); // survives reset; compare deltas
        for step in 0..50_000u32 {
            app.machine.run(1);
            fresh.run(1);
            assert_eq!(
                (
                    app.machine.pc(),
                    app.machine.sreg(),
                    app.machine.sp(),
                    app.machine.cycles() - cycles0,
                    app.machine.fault(),
                ),
                (
                    fresh.pc(),
                    fresh.sreg(),
                    fresh.sp(),
                    fresh.cycles(),
                    fresh.fault(),
                ),
                "diverged at step {step}"
            );
            if fresh.fault().is_some() {
                break;
            }
        }
    }

    #[test]
    fn framing_overhead_is_small() {
        let binary = vec![0u8; 64 * 1024];
        let stream = programming_stream(&binary, 256);
        let overhead = stream.len() as f64 / binary.len() as f64;
        assert!(
            overhead < 1.08,
            "framing overhead {overhead:.3} should stay under 8%"
        );
    }

    #[test]
    fn corrupt_frame_rejected() {
        let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
        let mut stream = programming_stream(&fw.image.bytes, 256);
        let n = stream.len();
        stream[n / 2] ^= 0xff;
        let mut app = AppProcessor::new();
        let err = apply_stream(&mut app, &stream).unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::BadChecksum { .. }
                | ProtocolError::UnknownCommand(_)
                | ProtocolError::Truncated
                | ProtocolError::AddressOutOfRange { .. }
                | ProtocolError::BadSequence { .. }
        ));
    }

    #[test]
    fn duplicated_frame_rejected_not_double_programmed() {
        let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
        let stream = programming_stream(&fw.image.bytes, 256);
        // Replay the second frame (chip erase) immediately after itself.
        let first = 6 + 1; // sign-on frame: 5-byte header + 1-byte body + checksum
        let second_end = first + 6 + 1;
        let mut dup = Vec::new();
        dup.extend_from_slice(&stream[..second_end]);
        dup.extend_from_slice(&stream[first..second_end]);
        dup.extend_from_slice(&stream[second_end..]);
        let mut app = AppProcessor::new();
        assert_eq!(
            apply_stream(&mut app, &dup).unwrap_err(),
            ProtocolError::BadSequence {
                expected: 2,
                got: 1
            }
        );
        assert!(!app.locked(), "rejected stream must not release the part");
    }

    #[test]
    fn dropped_frame_rejected_by_sequence_check() {
        let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
        let stream = programming_stream(&fw.image.bytes, 256);
        let first = 6 + 1;
        let mut short = Vec::new();
        short.extend_from_slice(&stream[..first]);
        short.extend_from_slice(&stream[first + 6 + 1..]); // skip chip erase
        let mut app = AppProcessor::new();
        assert_eq!(
            apply_stream(&mut app, &short).unwrap_err(),
            ProtocolError::BadSequence {
                expected: 1,
                got: 2
            }
        );
    }

    #[test]
    fn repair_stream_rewrites_only_named_pages_and_locks() {
        let mut app = AppProcessor::new();
        apply_stream(&mut app, &programming_stream(&[0x11u8; 1024], 256)).unwrap();
        let fixed = [0x22u8; 256];
        let stream = repair_stream(&[(256, &fixed[..])]);
        apply_stream(&mut app, &stream).unwrap();
        assert_eq!(&app.machine.flash()[..256], &[0x11u8; 256][..]);
        assert_eq!(&app.machine.flash()[256..512], &fixed[..]);
        assert_eq!(&app.machine.flash()[512..1024], &[0x11u8; 512][..]);
        assert!(app.locked());
    }

    #[test]
    fn page_write_requires_address() {
        let body = [Command::ProgramPage as u8, 1, 2, 3];
        let stream = frame(0, &body);
        let mut app = AppProcessor::new();
        assert_eq!(
            apply_stream(&mut app, &stream).unwrap_err(),
            ProtocolError::NoAddress
        );
    }

    #[test]
    fn oversized_binary_rejected_by_decoder() {
        let too_big = vec![0u8; 257 * 1024];
        let stream = programming_stream(&too_big, 256);
        let mut app = AppProcessor::new();
        assert!(matches!(
            apply_stream(&mut app, &stream).unwrap_err(),
            ProtocolError::AddressOutOfRange { .. }
        ));
    }

    #[test]
    fn truncated_stream_detected() {
        let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
        let stream = programming_stream(&fw.image.bytes, 256);
        let mut app = AppProcessor::new();
        assert_eq!(
            apply_stream(&mut app, &stream[..stream.len() - 3]).unwrap_err(),
            ProtocolError::Truncated
        );
    }
}
