//! The master processor (§V-A2, §VI-A): reads the container from the
//! external flash, randomizes, programs the application processor, and then
//! plays watchdog.

use avr_core::image::FirmwareImage;
use mavr::policy::{FlashWear, RandomizationPolicy};
use mavr::{randomize, RandomizeError, RandomizeOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use telemetry::{Telemetry, Value};

use crate::app::AppProcessor;
use crate::ext_flash::{ExternalFlash, FlashError};
use crate::link::SerialLink;

/// Timing breakdown of one boot (the quantity in the paper's Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StartupReport {
    /// Whether this boot re-randomized and reprogrammed the application
    /// processor (if not, the overhead is zero — §VII-B1: "this overhead is
    /// incurred only when the application needs to be randomized").
    pub randomized: bool,
    /// Image size shipped, in bytes.
    pub image_bytes: u32,
    /// Bytes on the wire including protocol framing (a few percent above
    /// `image_bytes`).
    pub wire_bytes: u32,
    /// Wall time of the randomize + stream + program pipeline, in ms. At
    /// 115200 baud this is serial-transfer dominated.
    pub total_ms: f64,
    /// The serial transfer component alone, in ms.
    pub transfer_ms: f64,
}

/// Errors from the master's boot sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MasterError {
    /// External flash problems.
    Flash(FlashError),
    /// Randomization failed (bad toolchain, unmappable target, …).
    Randomize(RandomizeError),
    /// The application flash is past its rated endurance.
    FlashWornOut,
}

impl std::fmt::Display for MasterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MasterError::Flash(e) => write!(f, "external flash: {e}"),
            MasterError::Randomize(e) => write!(f, "randomization: {e}"),
            MasterError::FlashWornOut => write!(f, "application flash endurance exhausted"),
        }
    }
}

impl std::error::Error for MasterError {}

impl From<FlashError> for MasterError {
    fn from(e: FlashError) -> Self {
        MasterError::Flash(e)
    }
}

impl From<RandomizeError> for MasterError {
    fn from(e: RandomizeError) -> Self {
        MasterError::Randomize(e)
    }
}

/// The ATmega1284P-role master.
#[derive(Debug, Clone)]
pub struct MasterProcessor {
    rng: StdRng,
    /// Randomization schedule.
    pub policy: RandomizationPolicy,
    /// Application-flash wear accounting.
    pub wear: FlashWear,
    /// The programming link to the application processor.
    pub link: SerialLink,
    /// Randomizer options.
    pub options: RandomizeOptions,
    boot_count: u32,
    /// Permutation used by the most recent randomization (diagnostics; the
    /// real master never persists it).
    pub last_permutation: Option<Vec<usize>>,
    /// The randomized image most recently programmed into the application
    /// processor, with its post-permutation symbol map — what crash
    /// forensics needs to attribute a dead PC to a function.
    pub last_image: Option<FirmwareImage>,
    /// Flight-recorder handle for boot-lifecycle events.
    pub telemetry: Telemetry,
}

impl MasterProcessor {
    /// New master with an entropy seed and the prototype serial link.
    pub fn new(seed: u64, policy: RandomizationPolicy) -> Self {
        MasterProcessor {
            rng: StdRng::seed_from_u64(seed),
            policy,
            wear: FlashWear::default(),
            link: SerialLink::prototype(),
            options: RandomizeOptions::default(),
            boot_count: 0,
            last_permutation: None,
            last_image: None,
            telemetry: Telemetry::off(),
        }
    }

    /// Boots completed so far.
    pub fn boot_count(&self) -> u32 {
        self.boot_count
    }

    /// The RNG stream position, for board checkpoints. A master restored
    /// with [`MasterProcessor::restore_entropy`] draws the exact
    /// permutation sequence the saved one would have.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Restore the RNG stream position and boot counter from a checkpoint.
    pub fn restore_entropy(&mut self, rng: [u64; 4], boot_count: u32) {
        self.rng = StdRng::from_state(rng);
        self.boot_count = boot_count;
    }

    /// One boot: read the container, randomize if the policy says so (or if
    /// `attack_detected`), program the application processor, set its lock
    /// fuse, and release it into the new binary.
    pub fn boot(
        &mut self,
        ext_flash: &ExternalFlash,
        app: &mut AppProcessor,
        attack_detected: bool,
    ) -> Result<StartupReport, MasterError> {
        self.boot_count += 1;
        let boot_count = self.boot_count;
        let must_randomize = self.policy.should_randomize(self.boot_count, attack_detected)
            // A blank application processor must be programmed regardless.
            || !app.locked();
        self.telemetry.emit("master.boot", None, || {
            vec![
                ("boot", Value::U64(u64::from(boot_count))),
                ("attack_detected", Value::Bool(attack_detected)),
                ("randomize", Value::Bool(must_randomize)),
            ]
        });
        if !must_randomize {
            // Normal start: just release reset.
            app.machine.reset();
            return Ok(StartupReport {
                randomized: false,
                image_bytes: 0,
                wire_bytes: 0,
                total_ms: 0.0,
                transfer_ms: 0.0,
            });
        }
        let endurance = app.machine.device().flash_endurance_cycles;
        if self.wear.exhausted(endurance) {
            return Err(MasterError::FlashWornOut);
        }
        let container = ext_flash.read()?;
        self.telemetry.emit("master.container_read", None, || {
            vec![(
                "image_bytes",
                Value::U64(u64::from(container.image.code_size())),
            )]
        });
        let randomized = randomize(&container.image, &mut self.rng, &self.options)?;
        self.last_permutation = Some(randomized.permutation.clone());
        self.telemetry.emit("master.randomize", None, || {
            vec![(
                "functions_permuted",
                Value::U64(randomized.permutation.len() as u64),
            )]
        });

        // Stream to the bootloader over the wire protocol; reads from the
        // SPI chip, the patch pass, and the page writes are pipelined
        // behind the serial link (§VI-B3 processes the image "in a
        // streaming fashion"). Table II's timing model uses the payload
        // bytes, which is what the paper's measurements track.
        let bytes = randomized.image.code_size();
        let transfer_ms = self.link.transfer_ms(bytes);
        let total_ms = self.link.programming_ms(bytes);
        let stream = crate::bootloader::programming_stream(
            &randomized.image.bytes,
            app.machine.device().flash_page_bytes as usize,
        );
        let wire_bytes = stream.len() as u32;
        crate::bootloader::apply_stream(app, &stream)
            .expect("master-generated stream applies cleanly");
        self.wear.program();
        self.last_image = Some(randomized.image);

        let report = StartupReport {
            randomized: true,
            image_bytes: bytes,
            wire_bytes,
            total_ms,
            transfer_ms,
        };
        self.telemetry.emit("master.programmed", None, || {
            vec![
                ("boot", Value::U64(u64::from(boot_count))),
                ("image_bytes", Value::U64(u64::from(report.image_bytes))),
                ("wire_bytes", Value::U64(u64::from(report.wire_bytes))),
                ("total_ms", Value::F64(report.total_ms)),
                ("transfer_ms", Value::F64(report.transfer_ms)),
            ]
        });
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avr_sim::RunExit;
    use synth_firmware::{apps, build, BuildOptions};

    fn provisioned() -> (MasterProcessor, ExternalFlash, AppProcessor) {
        let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
        let mut chip = ExternalFlash::new();
        chip.upload(&mavr::preprocess(&fw.image).unwrap()).unwrap();
        let master = MasterProcessor::new(0xb0a7d, RandomizationPolicy::default());
        (master, chip, AppProcessor::new())
    }

    #[test]
    fn first_boot_randomizes_and_app_runs() {
        let (mut master, chip, mut app) = provisioned();
        let report = master.boot(&chip, &mut app, false).unwrap();
        assert!(report.randomized);
        assert!(app.locked(), "lock fuse set after programming");
        assert!(report.total_ms > 0.0);
        assert_eq!(master.wear.cycles_used, 1);
        let exit = app.machine.run(1_200_000);
        assert_eq!(exit, RunExit::CyclesExhausted, "{:?}", app.machine.fault());
        assert!(app.machine.heartbeat.toggles().len() > 10);
    }

    #[test]
    fn periodic_policy_skips_reprogramming() {
        let (mut master, chip, mut app) = provisioned();
        master.policy = RandomizationPolicy {
            every_n_boots: 10,
            on_attack: true,
        };
        master.boot(&chip, &mut app, false).unwrap();
        let flash_after_first: Vec<u8> = app.machine.flash().to_vec();
        for _ in 0..9 {
            let r = master.boot(&chip, &mut app, false).unwrap();
            assert!(!r.randomized, "boots 2..10 reuse the layout");
        }
        assert_eq!(app.machine.flash(), &flash_after_first[..]);
        assert_eq!(master.wear.cycles_used, 1);
        // Boot 11 re-randomizes.
        let r = master.boot(&chip, &mut app, false).unwrap();
        assert!(r.randomized);
        assert_ne!(app.machine.flash(), &flash_after_first[..]);
    }

    #[test]
    fn attack_forces_rerandomization() {
        let (mut master, chip, mut app) = provisioned();
        master.policy = RandomizationPolicy {
            every_n_boots: 1000,
            on_attack: true,
        };
        master.boot(&chip, &mut app, false).unwrap();
        let perm1 = master.last_permutation.clone().unwrap();
        let r = master.boot(&chip, &mut app, true).unwrap();
        assert!(
            r.randomized,
            "failed attack triggers immediate re-randomization"
        );
        assert_ne!(master.last_permutation.unwrap(), perm1);
    }

    #[test]
    fn worn_out_flash_refuses() {
        let (mut master, chip, mut app) = provisioned();
        master.wear.cycles_used = app.machine.device().flash_endurance_cycles;
        assert_eq!(
            master.boot(&chip, &mut app, false).unwrap_err(),
            MasterError::FlashWornOut
        );
    }

    #[test]
    fn wire_protocol_overhead_is_bounded() {
        let (mut master, chip, mut app) = provisioned();
        let r = master.boot(&chip, &mut app, false).unwrap();
        assert!(r.wire_bytes > r.image_bytes);
        assert!(f64::from(r.wire_bytes) < f64::from(r.image_bytes) * 1.08);
    }

    #[test]
    fn startup_time_is_transfer_dominated() {
        let (mut master, chip, mut app) = provisioned();
        let r = master.boot(&chip, &mut app, false).unwrap();
        assert!(r.total_ms >= r.transfer_ms);
        assert!(r.total_ms < r.transfer_ms * 1.1 + 10.0);
    }
}
