//! The master processor (§V-A2, §VI-A): reads the container from the
//! external flash, randomizes, programs the application processor, and then
//! plays watchdog.

use avr_core::image::FirmwareImage;
use mavr::policy::{FlashWear, RandomizationPolicy};
use mavr::{randomize, RandomizeError, RandomizeOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use telemetry::{kinds, Telemetry, Value};

use crate::app::AppProcessor;
use crate::bootloader::ProtocolError;
use crate::chaos::{FaultPlan, ResilienceStats};
use crate::ext_flash::{ExternalFlash, FlashError};
use crate::link::SerialLink;

/// Bounded retries for the container read from external flash.
const MAX_CONTAINER_READS: u32 = 4;
/// Bounded full-image transfer attempts per image (fresh or degraded).
const MAX_STREAM_ATTEMPTS: u32 = 3;
/// Bounded page-repair rounds after each full transfer.
const MAX_REPAIR_ROUNDS: u32 = 2;
/// Base of the exponential retry backoff, in link-time milliseconds.
const RETRY_BACKOFF_MS: f64 = 25.0;

/// Timing breakdown of one boot (the quantity in the paper's Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StartupReport {
    /// Whether this boot re-randomized and reprogrammed the application
    /// processor (if not, the overhead is zero — §VII-B1: "this overhead is
    /// incurred only when the application needs to be randomized").
    pub randomized: bool,
    /// Image size shipped, in bytes.
    pub image_bytes: u32,
    /// Bytes on the wire including protocol framing (a few percent above
    /// `image_bytes`).
    pub wire_bytes: u32,
    /// Wall time of the randomize + stream + program pipeline, in ms. At
    /// 115200 baud this is serial-transfer dominated. Retries add their
    /// backoff and retransmission time here.
    pub total_ms: f64,
    /// The serial transfer component alone, in ms.
    pub transfer_ms: f64,
    /// Reflash retries this boot: failed transfers, page-repair rounds,
    /// and container re-reads.
    pub retries: u32,
    /// True when the boot fell back to degraded safe mode: the last-known-
    /// good image was re-streamed without fresh randomization.
    pub degraded: bool,
}

/// Errors from the master's boot sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MasterError {
    /// External flash problems.
    Flash(FlashError),
    /// Randomization failed (bad toolchain, unmappable target, …).
    Randomize(RandomizeError),
    /// The application flash is past its rated endurance.
    FlashWornOut,
    /// The programming stream failed to apply after every bounded retry.
    Programming {
        /// Boot ordinal (1-based) on which the failure happened.
        boot: u32,
        /// The decoder error from the final attempt.
        error: ProtocolError,
    },
    /// Programmed flash failed verification against the intended image
    /// even after retries and the degraded fallback: the board is bricked
    /// pending manual service.
    Bricked {
        /// Boot ordinal (1-based) on which the failure happened.
        boot: u32,
        /// Pages still mismatching after the final attempt.
        bad_pages: usize,
    },
}

impl std::fmt::Display for MasterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MasterError::Flash(e) => write!(f, "external flash: {e}"),
            MasterError::Randomize(e) => write!(f, "randomization: {e}"),
            MasterError::FlashWornOut => write!(f, "application flash endurance exhausted"),
            MasterError::Programming { boot, error } => match error.sequence() {
                Some(seq) => write!(
                    f,
                    "boot {boot}: programming stream failed at frame sequence {seq}: {error}"
                ),
                None => write!(f, "boot {boot}: programming stream failed: {error}"),
            },
            MasterError::Bricked { boot, bad_pages } => write!(
                f,
                "boot {boot}: flash verification failed after all retries and the degraded \
                 fallback ({bad_pages} bad pages) — board requires manual service"
            ),
        }
    }
}

impl std::error::Error for MasterError {}

impl From<FlashError> for MasterError {
    fn from(e: FlashError) -> Self {
        MasterError::Flash(e)
    }
}

impl From<RandomizeError> for MasterError {
    fn from(e: RandomizeError) -> Self {
        MasterError::Randomize(e)
    }
}

/// The ATmega1284P-role master.
#[derive(Debug, Clone)]
pub struct MasterProcessor {
    rng: StdRng,
    /// Randomization schedule.
    pub policy: RandomizationPolicy,
    /// Application-flash wear accounting.
    pub wear: FlashWear,
    /// The programming link to the application processor.
    pub link: SerialLink,
    /// Randomizer options.
    pub options: RandomizeOptions,
    boot_count: u32,
    /// Permutation used by the most recent randomization (diagnostics; the
    /// real master never persists it).
    pub last_permutation: Option<Vec<usize>>,
    /// The randomized image most recently programmed into the application
    /// processor, with its post-permutation symbol map — what crash
    /// forensics needs to attribute a dead PC to a function.
    pub last_image: Option<FirmwareImage>,
    /// Flight-recorder handle for boot-lifecycle events.
    pub telemetry: Telemetry,
    /// Fault injection for the recovery pipeline (inert by default).
    pub chaos: FaultPlan,
    /// Lifetime counters of retries and degraded boots survived.
    pub resilience: ResilienceStats,
}

impl MasterProcessor {
    /// New master with an entropy seed and the prototype serial link.
    pub fn new(seed: u64, policy: RandomizationPolicy) -> Self {
        MasterProcessor {
            rng: StdRng::seed_from_u64(seed),
            policy,
            wear: FlashWear::default(),
            link: SerialLink::prototype(),
            options: RandomizeOptions::default(),
            boot_count: 0,
            last_permutation: None,
            last_image: None,
            telemetry: Telemetry::off(),
            chaos: FaultPlan::none(),
            resilience: ResilienceStats::default(),
        }
    }

    /// Boots completed so far.
    pub fn boot_count(&self) -> u32 {
        self.boot_count
    }

    /// The RNG stream position, for board checkpoints. A master restored
    /// with [`MasterProcessor::restore_entropy`] draws the exact
    /// permutation sequence the saved one would have.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Restore the RNG stream position and boot counter from a checkpoint.
    pub fn restore_entropy(&mut self, rng: [u64; 4], boot_count: u32) {
        self.rng = StdRng::from_state(rng);
        self.boot_count = boot_count;
    }

    /// One boot: read the container, randomize if the policy says so (or if
    /// `attack_detected`), program the application processor, set its lock
    /// fuse, and release it into the new binary.
    pub fn boot(
        &mut self,
        ext_flash: &ExternalFlash,
        app: &mut AppProcessor,
        attack_detected: bool,
    ) -> Result<StartupReport, MasterError> {
        self.boot_count += 1;
        let boot_count = self.boot_count;
        let must_randomize = self.policy.should_randomize(self.boot_count, attack_detected)
            // A blank application processor must be programmed regardless.
            || !app.locked();
        self.telemetry.emit("master.boot", None, || {
            vec![
                ("boot", Value::U64(u64::from(boot_count))),
                ("attack_detected", Value::Bool(attack_detected)),
                ("randomize", Value::Bool(must_randomize)),
            ]
        });
        if !must_randomize {
            // Normal start: just release reset.
            app.machine.reset();
            return Ok(StartupReport {
                randomized: false,
                image_bytes: 0,
                wire_bytes: 0,
                total_ms: 0.0,
                transfer_ms: 0.0,
                retries: 0,
                degraded: false,
            });
        }
        let endurance = app.machine.device().flash_endurance_cycles;
        if self.wear.exhausted(endurance) {
            return Err(MasterError::FlashWornOut);
        }
        let page_bytes = app.machine.device().flash_page_bytes as usize;
        let mut retries = 0u32;
        let mut extra_ms = 0.0f64;

        // Stage 1: read + integrity-check the container. Bit rot is
        // transient per read, so bounded re-reads can clear it.
        let fresh = match self.read_container(ext_flash, boot_count, &mut retries, &mut extra_ms) {
            Ok(container) => {
                let randomized = randomize(&container.image, &mut self.rng, &self.options)?;
                self.telemetry.emit("master.randomize", None, || {
                    vec![(
                        "functions_permuted",
                        Value::U64(randomized.permutation.len() as u64),
                    )]
                });
                Ok(randomized)
            }
            Err(e) => Err(MasterError::Flash(e)),
        };

        // Stage 2: stream to the bootloader over the wire protocol and
        // verify the written pages against the intended image; reads from
        // the SPI chip, the patch pass, and the page writes are pipelined
        // behind the serial link (§VI-B3 processes the image "in a
        // streaming fashion"). Table II's timing model uses the payload
        // bytes, which is what the paper's measurements track.
        let cause: MasterError = match fresh {
            Ok(randomized) => {
                match self.program_verified(
                    app,
                    &randomized.image.bytes,
                    page_bytes,
                    boot_count,
                    &mut retries,
                    &mut extra_ms,
                ) {
                    Ok(wire_bytes) => {
                        self.last_permutation = Some(randomized.permutation);
                        self.wear.program();
                        let bytes = randomized.image.code_size();
                        self.last_image = Some(randomized.image);
                        return Ok(self.finish_report(
                            bytes, wire_bytes, extra_ms, retries, false, boot_count,
                        ));
                    }
                    Err(e) => e,
                }
            }
            Err(e) => e,
        };

        // Stage 3: degraded safe mode — re-stream the last-known-good
        // image without fresh randomization. Staying on a known layout
        // beats not flying at all; the next healthy boot re-randomizes.
        self.telemetry.emit(kinds::DEGRADED_BOOT, None, || {
            vec![
                ("boot", Value::U64(u64::from(boot_count))),
                ("cause", Value::Str(cause.to_string())),
            ]
        });
        let Some(last) = self.last_image.clone() else {
            self.emit_boot_failed(boot_count, &cause);
            return Err(cause);
        };
        match self.program_verified(
            app,
            &last.bytes,
            page_bytes,
            boot_count,
            &mut retries,
            &mut extra_ms,
        ) {
            Ok(wire_bytes) => {
                self.resilience.degraded_boots += 1;
                self.wear.program();
                let bytes = last.code_size();
                Ok(self.finish_report(bytes, wire_bytes, extra_ms, retries, true, boot_count))
            }
            Err(final_err) => {
                self.emit_boot_failed(boot_count, &final_err);
                Err(final_err)
            }
        }
    }

    /// Read the container from external flash with bounded retries; each
    /// retry charges exponential backoff and re-rolls any transient rot.
    fn read_container(
        &mut self,
        ext_flash: &ExternalFlash,
        boot: u32,
        retries: &mut u32,
        extra_ms: &mut f64,
    ) -> Result<hexfile::MavrContainer, FlashError> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match ext_flash.read_chaos(&mut self.chaos) {
                Ok(container) => {
                    self.telemetry.emit("master.container_read", None, || {
                        vec![(
                            "image_bytes",
                            Value::U64(u64::from(container.image.code_size())),
                        )]
                    });
                    return Ok(container);
                }
                Err(e) if attempt < MAX_CONTAINER_READS => {
                    *retries += 1;
                    self.resilience.reflash_retries += 1;
                    let backoff = backoff_ms(*retries);
                    *extra_ms += backoff;
                    self.telemetry.emit(kinds::REFLASH_RETRY, None, || {
                        vec![
                            ("boot", Value::U64(u64::from(boot))),
                            ("stage", Value::Str("container_read".into())),
                            ("attempt", Value::U64(u64::from(attempt))),
                            ("backoff_ms", Value::F64(backoff)),
                            ("error", Value::Str(e.to_string())),
                        ]
                    });
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Program `image` into the app processor and verify it page by page,
    /// with bounded per-page repair rounds and bounded whole-stream
    /// retries. Returns the wire size of one full transfer.
    fn program_verified(
        &mut self,
        app: &mut AppProcessor,
        image: &[u8],
        page_bytes: usize,
        boot: u32,
        retries: &mut u32,
        extra_ms: &mut f64,
    ) -> Result<u32, MasterError> {
        let stream = crate::bootloader::programming_stream(image, page_bytes);
        let wire_bytes = stream.len() as u32;
        let mut last_err = MasterError::Programming {
            boot,
            error: ProtocolError::Truncated,
        };
        for attempt in 1..=MAX_STREAM_ATTEMPTS {
            if attempt > 1 {
                *retries += 1;
                self.resilience.reflash_retries += 1;
                let backoff = backoff_ms(*retries);
                *extra_ms += backoff + self.link.programming_ms(image.len() as u32);
                let err_text = last_err.to_string();
                self.telemetry.emit(kinds::REFLASH_RETRY, None, || {
                    vec![
                        ("boot", Value::U64(u64::from(boot))),
                        ("stage", Value::Str("full_stream".into())),
                        ("attempt", Value::U64(u64::from(attempt))),
                        ("backoff_ms", Value::F64(backoff)),
                        ("error", Value::Str(err_text.clone())),
                    ]
                });
            }
            let delivered = self.chaos.mangle_stream(&stream);
            if let Err(error) =
                crate::bootloader::apply_stream_chaos(app, &delivered, &mut self.chaos)
            {
                last_err = MasterError::Programming { boot, error };
                continue;
            }
            match self.verify_and_repair(app, image, page_bytes, boot, retries, extra_ms) {
                Ok(()) => return Ok(wire_bytes),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    /// Verify written flash against `image`; re-send only the mismatching
    /// pages (plus the lock fuse + release tail) for a bounded number of
    /// rounds.
    fn verify_and_repair(
        &mut self,
        app: &mut AppProcessor,
        image: &[u8],
        page_bytes: usize,
        boot: u32,
        retries: &mut u32,
        extra_ms: &mut f64,
    ) -> Result<(), MasterError> {
        for round in 0..=MAX_REPAIR_ROUNDS {
            let bad = app.mismatched_pages(image, page_bytes);
            if bad.is_empty() && app.locked() {
                return Ok(());
            }
            if round == MAX_REPAIR_ROUNDS {
                return Err(MasterError::Bricked {
                    boot,
                    bad_pages: bad.len(),
                });
            }
            *retries += 1;
            self.resilience.reflash_retries += 1;
            let backoff = backoff_ms(*retries);
            let payload: usize = bad
                .iter()
                .map(|&a| page_bytes.min(image.len() - a as usize))
                .sum();
            *extra_ms += backoff + self.link.programming_ms(payload as u32);
            let bad_pages = bad.len();
            self.telemetry.emit(kinds::REFLASH_RETRY, None, || {
                vec![
                    ("boot", Value::U64(u64::from(boot))),
                    ("stage", Value::Str("page_repair".into())),
                    ("pages", Value::U64(bad_pages as u64)),
                    ("backoff_ms", Value::F64(backoff)),
                ]
            });
            let pages: Vec<(u32, &[u8])> = bad
                .iter()
                .map(|&a| {
                    let start = a as usize;
                    let end = (start + page_bytes).min(image.len());
                    (a, &image[start..end])
                })
                .collect();
            let stream = crate::bootloader::repair_stream(&pages);
            let delivered = self.chaos.mangle_stream(&stream);
            // A decode failure here just means the round repaired nothing;
            // the next iteration re-verifies and either retries or gives up.
            let _ = crate::bootloader::apply_stream_chaos(app, &delivered, &mut self.chaos);
        }
        unreachable!("repair loop returns within MAX_REPAIR_ROUNDS + 1 rounds")
    }

    /// Assemble the final report for a programming boot and emit the
    /// `master.programmed` event.
    fn finish_report(
        &mut self,
        image_bytes: u32,
        wire_bytes: u32,
        extra_ms: f64,
        retries: u32,
        degraded: bool,
        boot: u32,
    ) -> StartupReport {
        let report = StartupReport {
            randomized: true,
            image_bytes,
            wire_bytes,
            total_ms: self.link.programming_ms(image_bytes) + extra_ms,
            transfer_ms: self.link.transfer_ms(image_bytes),
            retries,
            degraded,
        };
        self.telemetry.emit("master.programmed", None, || {
            vec![
                ("boot", Value::U64(u64::from(boot))),
                ("image_bytes", Value::U64(u64::from(report.image_bytes))),
                ("wire_bytes", Value::U64(u64::from(report.wire_bytes))),
                ("total_ms", Value::F64(report.total_ms)),
                ("transfer_ms", Value::F64(report.transfer_ms)),
                ("retries", Value::U64(u64::from(report.retries))),
                ("degraded", Value::Bool(report.degraded)),
            ]
        });
        report
    }

    fn emit_boot_failed(&mut self, boot: u32, error: &MasterError) {
        let text = error.to_string();
        self.telemetry.emit(kinds::BOOT_FAILED, None, || {
            vec![
                ("boot", Value::U64(u64::from(boot))),
                ("error", Value::Str(text.clone())),
            ]
        });
    }
}

/// Exponential backoff for the `n`-th retry of a boot (1-based), in
/// link-time milliseconds, capped at 16x the base.
fn backoff_ms(n: u32) -> f64 {
    RETRY_BACKOFF_MS * f64::from(1u32 << (n - 1).min(4))
}

#[cfg(test)]
mod tests {
    use super::*;
    use avr_sim::RunExit;
    use synth_firmware::{apps, build, BuildOptions};

    fn provisioned() -> (MasterProcessor, ExternalFlash, AppProcessor) {
        let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
        let mut chip = ExternalFlash::new();
        chip.upload(&mavr::preprocess(&fw.image).unwrap()).unwrap();
        let master = MasterProcessor::new(0xb0a7d, RandomizationPolicy::default());
        (master, chip, AppProcessor::new())
    }

    #[test]
    fn first_boot_randomizes_and_app_runs() {
        let (mut master, chip, mut app) = provisioned();
        let report = master.boot(&chip, &mut app, false).unwrap();
        assert!(report.randomized);
        assert!(app.locked(), "lock fuse set after programming");
        assert!(report.total_ms > 0.0);
        assert_eq!(master.wear.cycles_used, 1);
        let exit = app.machine.run(1_200_000);
        assert_eq!(exit, RunExit::CyclesExhausted, "{:?}", app.machine.fault());
        assert!(app.machine.heartbeat.toggles().len() > 10);
    }

    #[test]
    fn periodic_policy_skips_reprogramming() {
        let (mut master, chip, mut app) = provisioned();
        master.policy = RandomizationPolicy {
            every_n_boots: 10,
            on_attack: true,
        };
        master.boot(&chip, &mut app, false).unwrap();
        let flash_after_first: Vec<u8> = app.machine.flash().to_vec();
        for _ in 0..9 {
            let r = master.boot(&chip, &mut app, false).unwrap();
            assert!(!r.randomized, "boots 2..10 reuse the layout");
        }
        assert_eq!(app.machine.flash(), &flash_after_first[..]);
        assert_eq!(master.wear.cycles_used, 1);
        // Boot 11 re-randomizes.
        let r = master.boot(&chip, &mut app, false).unwrap();
        assert!(r.randomized);
        assert_ne!(app.machine.flash(), &flash_after_first[..]);
    }

    #[test]
    fn attack_forces_rerandomization() {
        let (mut master, chip, mut app) = provisioned();
        master.policy = RandomizationPolicy {
            every_n_boots: 1000,
            on_attack: true,
        };
        master.boot(&chip, &mut app, false).unwrap();
        let perm1 = master.last_permutation.clone().unwrap();
        let r = master.boot(&chip, &mut app, true).unwrap();
        assert!(
            r.randomized,
            "failed attack triggers immediate re-randomization"
        );
        assert_ne!(master.last_permutation.unwrap(), perm1);
    }

    #[test]
    fn worn_out_flash_refuses() {
        let (mut master, chip, mut app) = provisioned();
        master.wear.cycles_used = app.machine.device().flash_endurance_cycles;
        assert_eq!(
            master.boot(&chip, &mut app, false).unwrap_err(),
            MasterError::FlashWornOut
        );
    }

    #[test]
    fn wire_protocol_overhead_is_bounded() {
        let (mut master, chip, mut app) = provisioned();
        let r = master.boot(&chip, &mut app, false).unwrap();
        assert!(r.wire_bytes > r.image_bytes);
        assert!(f64::from(r.wire_bytes) < f64::from(r.image_bytes) * 1.08);
    }

    #[test]
    fn startup_time_is_transfer_dominated() {
        let (mut master, chip, mut app) = provisioned();
        let r = master.boot(&chip, &mut app, false).unwrap();
        assert!(r.total_ms >= r.transfer_ms);
        assert!(r.total_ms < r.transfer_ms * 1.1 + 10.0);
        assert_eq!(r.retries, 0);
        assert!(!r.degraded);
    }

    #[test]
    fn noisy_link_is_survived_by_retries() {
        use crate::chaos::{ChaosConfig, FaultPlan};
        // Moderate stream noise: most boots need a retry or repair round,
        // but the bounded budget clears it.
        let cfg = ChaosConfig {
            stream_bit_flip: 0.0002,
            ..ChaosConfig::off()
        };
        let mut survived = 0u32;
        let mut retried = 0u32;
        for seed in 0..6u64 {
            let (mut master, chip, mut app) = provisioned();
            master.chaos = FaultPlan::new(seed, cfg);
            if let Ok(r) = master.boot(&chip, &mut app, false) {
                survived += 1;
                retried += r.retries;
                // Success must mean a verified image and a locked part.
                let intended = &master.last_image.as_ref().unwrap().bytes;
                assert!(app.mismatched_pages(intended, 256).is_empty());
                assert!(app.locked());
                assert!(
                    !r.degraded || r.total_ms > r.transfer_ms,
                    "retries and degradation must charge time"
                );
            }
        }
        assert!(survived >= 4, "only {survived}/6 noisy boots survived");
        assert!(retried > 0, "expected at least one retry across seeds");
        let (mut quiet_master, chip, mut app) = provisioned();
        let quiet = quiet_master.boot(&chip, &mut app, false).unwrap();
        assert_eq!(quiet.retries, 0);
        assert_eq!(
            quiet_master.resilience,
            crate::chaos::ResilienceStats::default()
        );
    }

    #[test]
    fn hopeless_link_degrades_then_fails_stop_with_typed_error() {
        use crate::chaos::{ChaosConfig, FaultPlan};
        // First boot is clean, so a last-known-good image exists.
        let (mut master, chip, mut app) = provisioned();
        master.boot(&chip, &mut app, false).unwrap();
        let good = master.last_image.clone().unwrap();

        // Then the link turns to static: every frame takes flips.
        master.chaos = FaultPlan::new(
            1,
            ChaosConfig {
                stream_bit_flip: 0.2,
                ..ChaosConfig::off()
            },
        );
        let err = master.boot(&chip, &mut app, true).unwrap_err();
        assert!(
            matches!(
                err,
                MasterError::Programming { .. } | MasterError::Bricked { .. }
            ),
            "expected a typed programming failure, got {err:?}"
        );
        // The Display impl names the boot ordinal.
        assert!(err.to_string().contains("boot 2"), "{err}");
        // The failed boot never released a half-programmed image as good.
        assert_eq!(master.last_image.unwrap().bytes, good.bytes);
    }

    #[test]
    fn unreadable_container_falls_back_to_last_known_good() {
        use crate::chaos::{ChaosConfig, FaultPlan};
        let (mut master, chip, mut app) = provisioned();
        master.boot(&chip, &mut app, false).unwrap();
        let perm_before = master.last_permutation.clone().unwrap();

        // Saturating rot: every container read fails its CRC check, but
        // the serial link stays clean, so degraded mode can re-stream the
        // last-known-good image.
        master.chaos = FaultPlan::new(
            2,
            ChaosConfig {
                flash_bit_rot: 0.01,
                ..ChaosConfig::off()
            },
        );
        let r = master.boot(&chip, &mut app, true).unwrap();
        assert!(r.degraded, "expected the degraded safe-mode path");
        assert!(r.retries > 0, "container re-reads must be counted");
        assert_eq!(master.resilience.degraded_boots, 1);
        // No fresh randomization happened: the layout is unchanged.
        assert_eq!(master.last_permutation.clone().unwrap(), perm_before);
        let intended = &master.last_image.as_ref().unwrap().bytes;
        assert!(app.mismatched_pages(intended, 256).is_empty());
        assert!(app.locked());
    }

    #[test]
    fn first_boot_with_no_fallback_image_fails_stop() {
        use crate::chaos::{ChaosConfig, FaultPlan};
        let (mut master, chip, mut app) = provisioned();
        master.chaos = FaultPlan::new(
            3,
            ChaosConfig {
                flash_bit_rot: 0.01,
                ..ChaosConfig::off()
            },
        );
        let err = master.boot(&chip, &mut app, false).unwrap_err();
        assert!(
            matches!(
                err,
                MasterError::Flash(FlashError::IntegrityFailure { .. })
                    | MasterError::Flash(FlashError::Corrupt(_))
            ),
            "got {err:?}"
        );
        assert!(!app.locked(), "no image was ever released");
    }
}
