//! The application processor with its readout-protection (lock) fuse
//! (§V-A3): "the attacker [cannot obtain] a copy of the current binary
//! (that is, randomized binary) stored in the application processor's
//! flash memory".

use avr_sim::Machine;

/// The application MCU plus its programming-interface state.
#[derive(Debug, Clone)]
pub struct AppProcessor {
    /// The simulated ATmega2560.
    pub machine: Machine,
    lock_fuse: bool,
}

impl AppProcessor {
    /// A factory-fresh part: erased flash, lock fuse clear.
    pub fn new() -> Self {
        AppProcessor {
            machine: Machine::new_atmega2560(),
            lock_fuse: false,
        }
    }

    /// Set the readout-protection fuse. Cleared only by a full chip erase.
    pub fn set_lock_fuse(&mut self) {
        self.lock_fuse = true;
    }

    /// Whether readout protection is active.
    pub fn locked(&self) -> bool {
        self.lock_fuse
    }

    /// Force the fuse to a checkpointed value. Only the snapshot-restore
    /// path may use this; everything else goes through
    /// [`AppProcessor::set_lock_fuse`] / [`AppProcessor::chip_erase`],
    /// which model the real part's one-way semantics.
    pub fn restore_lock_fuse(&mut self, locked: bool) {
        self.lock_fuse = locked;
    }

    /// The external debugger / ISP view of flash: erased-looking `0xff`
    /// when the lock fuse is set, the real contents otherwise. This is the
    /// interface an attacker with physical tools would use.
    pub fn external_flash_read(&self) -> Vec<u8> {
        if self.lock_fuse {
            vec![0xff; self.machine.flash().len()]
        } else {
            self.machine.flash().to_vec()
        }
    }

    /// Bootloader-side programming: a full chip erase (which also clears
    /// the lock fuse, as on real parts) followed by a write and reset.
    pub fn chip_erase(&mut self) {
        self.machine.erase_flash();
        self.lock_fuse = false;
    }

    /// Bootloader-side write of one staged page. No implicit erase: the
    /// commit path decides whether a chip erase preceded it (full reflash)
    /// or not (targeted page repair).
    pub fn program_page(&mut self, addr: u32, data: &[u8]) {
        self.machine.load_flash(addr, data);
    }

    /// Bootloader-side verify: compare flash against `image` page by page
    /// and return the byte addresses of mismatching pages. The bootloader
    /// reads its *own* flash, so the lock fuse — which gates only external
    /// readout — does not blind it; on the wire this is a per-page CRC
    /// exchange, a few bytes per page, so verification is cheap next to the
    /// transfer itself (§VI-B4 timing).
    pub fn mismatched_pages(&self, image: &[u8], page_size: usize) -> Vec<u32> {
        let flash = self.machine.flash();
        image
            .chunks(page_size)
            .enumerate()
            .filter_map(|(i, page)| {
                let addr = i * page_size;
                let end = (addr + page.len()).min(flash.len());
                if addr >= flash.len() || flash[addr..end] != page[..end - addr] {
                    Some(addr as u32)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Write a binary via the (master-driven) programming interface, then
    /// reset into it.
    pub fn program_and_reset(&mut self, binary: &[u8]) {
        self.machine.erase_flash();
        self.machine.load_flash(0, binary);
        self.machine.reset();
        self.machine.uart0.clear();
        self.machine.heartbeat.clear();
    }
}

impl Default for AppProcessor {
    fn default() -> Self {
        AppProcessor::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_fuse_hides_flash() {
        let mut app = AppProcessor::new();
        app.program_and_reset(&[0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(&app.external_flash_read()[..4], &[0xde, 0xad, 0xbe, 0xef]);
        app.set_lock_fuse();
        assert!(app.locked());
        assert!(app.external_flash_read().iter().all(|&b| b == 0xff));
        // The CPU itself still executes the real contents.
        assert_eq!(&app.machine.flash()[..4], &[0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn chip_erase_clears_fuse_and_flash() {
        let mut app = AppProcessor::new();
        app.program_and_reset(&[1, 2, 3, 4]);
        app.set_lock_fuse();
        app.chip_erase();
        assert!(!app.locked());
        assert!(app.machine.flash().iter().all(|&b| b == 0xff));
    }

    #[test]
    fn reprogram_resets_cpu_state() {
        let mut app = AppProcessor::new();
        app.program_and_reset(&[0x00, 0x00]); // nop
        app.machine.run(5);
        assert!(app.machine.cycles() > 0);
        let pc_before = app.machine.pc();
        assert!(pc_before > 0);
        app.program_and_reset(&[0x00, 0x00, 0x00, 0x00]);
        assert_eq!(app.machine.pc(), 0);
    }
}
