//! The §VIII-A strawman: a **software-only** MAVR. The binary is
//! randomized once at flash time on the host; there is no master processor,
//! no external flash, no watchdog and no re-randomization.
//!
//! The paper rejects this design for two reasons, both reproducible here:
//!
//! 1. **One permutation forever** — "when the hardware is deployed, it
//!    contains only a single permutation of the randomization. Successive
//!    failed ROP attempts could then be utilized to leak information";
//!    quantified by [`rop::brute::simulate_incremental_leak`]: with crash
//!    feedback the layout falls in ~n²/4 probes instead of n!/2.
//! 2. **Not fault tolerant** — "a failed attempt will result in the
//!    application processor executing garbage bytes and becoming
//!    inoperable. The only way to recover … is to reset the application
//!    processor by cycling its power source which is extremely difficult
//!    when a UAV is in flight."

use avr_core::image::FirmwareImage;
use avr_sim::Machine;
use mavr::{randomize, RandomizeError, RandomizeOptions};

/// A board flashed once with a host-randomized binary.
#[derive(Debug, Clone)]
pub struct SoftwareOnlyBoard {
    /// The single randomized image burned at flash time.
    pub image: FirmwareImage,
    /// The application processor.
    pub machine: Machine,
    power_cycles: u32,
}

impl SoftwareOnlyBoard {
    /// Flash-time randomization on the host, then deploy.
    pub fn flash(image: &FirmwareImage, seed: u64) -> Result<Self, RandomizeError> {
        let mut rng = mavr::seeded_rng(seed);
        let r = randomize(image, &mut rng, &RandomizeOptions::default())?;
        let mut machine = Machine::new_atmega2560();
        machine.load_flash(0, &r.image.bytes);
        Ok(SoftwareOnlyBoard {
            image: r.image,
            machine,
            power_cycles: 0,
        })
    }

    /// Run; with no master watching, a fault just leaves the board dead.
    pub fn run(&mut self, cycles: u64) {
        let _ = self.machine.run(cycles);
    }

    /// Whether the board is inoperable (crashed, nothing to recover it).
    pub fn dead(&self) -> bool {
        self.machine.fault().is_some()
    }

    /// A manual power cycle — the in-flight-impossible recovery. Note what
    /// it does **not** do: the flash still holds the *same* permutation.
    pub fn power_cycle(&mut self) {
        self.machine.reset();
        self.machine.uart0.clear();
        self.machine.heartbeat.clear();
        self.power_cycles += 1;
    }

    /// How many manual interventions this board has needed.
    pub fn power_cycles(&self) -> u32 {
        self.power_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mavlink_lite::GroundStation;
    use rop::attack::AttackContext;
    use synth_firmware::{apps, build, layout as l, BuildOptions};

    fn target() -> FirmwareImage {
        build(&apps::tiny_test_app(), &BuildOptions::vulnerable_mavr())
            .unwrap()
            .image
    }

    #[test]
    fn software_only_board_flies_until_attacked() {
        let image = target();
        let mut board = SoftwareOnlyBoard::flash(&image, 77).unwrap();
        board.run(1_500_000);
        assert!(!board.dead());
        assert!(board.machine.heartbeat.toggles().len() > 10);
    }

    #[test]
    fn crashed_board_stays_dead_without_manual_power_cycle() {
        // Find a seed whose layout crashes on the stock-targeted payload,
        // then show the §VIII-A failure: no recovery, and the power cycle
        // that would fix it keeps the SAME vulnerable-to-leak permutation.
        let image = target();
        let ctx = AttackContext::discover(&image).unwrap();
        let payload = ctx.v2_payload(&[(l::GYRO + 3, [9, 9, 9])]).unwrap();
        let mut crashed = None;
        for seed in 0..20u64 {
            let mut board = SoftwareOnlyBoard::flash(&image, seed).unwrap();
            board.run(300_000);
            let mut gcs = GroundStation::new();
            board
                .machine
                .uart0
                .inject(&gcs.exploit_packet(&payload).unwrap());
            board.run(6_000_000);
            assert_ne!(
                board.machine.peek_range(l::GYRO + 3, 3),
                vec![9, 9, 9],
                "randomization still defeats the stock-layout payload"
            );
            if board.dead() {
                crashed = Some(board);
                break;
            }
        }
        let mut board = crashed.expect("some layout crashes on the failed attack");
        let flash_before = board.machine.flash().to_vec();

        // Dead is dead: more cycles change nothing.
        let toggles = board.machine.heartbeat.toggles().len();
        board.run(5_000_000);
        assert!(board.dead());
        assert_eq!(board.machine.heartbeat.toggles().len(), toggles);

        // Manual power cycle brings it back — with the identical layout.
        board.power_cycle();
        board.run(1_500_000);
        assert!(!board.dead());
        assert_eq!(board.power_cycles(), 1);
        assert_eq!(
            board.machine.flash(),
            &flash_before[..],
            "§VIII-A: the permutation never changes, enabling incremental leak"
        );
    }

    #[test]
    fn leak_math_backs_the_papers_argument() {
        // For SynthRover's 800 functions: whole-permutation brute force is
        // ~800!/2 (≈ 2^6566); the incremental leak against a fixed layout is
        // ~800·803/4 ≈ 160k probes — feasible. Re-randomization (the
        // hardware design) is what closes the gap.
        let leak = rop::brute::expected_incremental_leak(800.0);
        assert!(leak < 200_000.0);
        assert!(mavr::math::entropy_bits(800) > 6000.0);
    }
}
