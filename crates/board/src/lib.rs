//! The MAVR hardware platform simulation (§V-A, §VI-A, Figs. 7–8).
//!
//! A [`MavrBoard`] wires together:
//!
//! * an **application processor** (ATmega2560, simulated by [`avr_sim`])
//!   with its readout-protection fuse set, so nothing off-chip can read the
//!   randomized binary ([`app::AppProcessor`]);
//! * an **external flash chip** (M95M02-class SPI EEPROM) holding only the
//!   *unrandomized* container — binary plus prepended symbol table
//!   ([`ext_flash::ExternalFlash`]);
//! * a **master processor** (ATmega1284P role) that randomizes at boot per
//!   policy, streams the patched binary to the application processor's
//!   bootloader over the serial link, and then watches the heartbeat to
//!   detect failed attacks — on detection it resets, **re-randomizes** and
//!   reflashes ([`master::MasterProcessor`]);
//! * a **serial link** with baud-accurate timing
//!   ([`link::SerialLink`]) — at the prototype's 115200 baud the
//!   transfer dominates startup, which is how the paper's Table II numbers
//!   arise.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod board;
pub mod bootloader;
pub mod chaos;
pub mod ext_flash;
pub mod link;
pub mod master;
pub mod software_only;

pub use app::AppProcessor;
pub use board::{BoardEvent, BoardState, MavrBoard, RecoveryCause};
pub use chaos::{ChaosConfig, ChaosState, FaultPlan, ResilienceStats};
pub use ext_flash::ExternalFlash;
pub use link::SerialLink;
pub use master::{MasterError, MasterProcessor, StartupReport};
pub use software_only::SoftwareOnlyBoard;
