//! The master↔application serial programming link with baud-accurate
//! timing (§VII-B1).
//!
//! "For our prototype design, we are limited to 115200 baud rate which
//! allows for a maximum of 11 bytes per millisecond transfer rate. In a
//! full production PCB … the bottleneck becomes how fast we can write the
//! randomized binary to the application processor's internal flash."

/// Bits on the wire per byte (8N1 framing).
pub const BITS_PER_BYTE: f64 = 10.0;

/// The prototype's UART rate.
pub const PROTOTYPE_BAUD: u32 = 115_200;

/// ATmega2560 flash page programming time (ms per 256-byte page, from the
/// datasheet's ~4.5 ms page write).
pub const PAGE_PROGRAM_MS: f64 = 4.5;

/// Page size of the application flash.
pub const PAGE_BYTES: u32 = 256;

/// A point-to-point serial link model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SerialLink {
    /// Baud rate in bits/s.
    pub baud: u32,
}

impl SerialLink {
    /// The prototype link (115200 baud).
    pub fn prototype() -> Self {
        SerialLink {
            baud: PROTOTYPE_BAUD,
        }
    }

    /// A production link fast enough that flash page programming becomes
    /// the bottleneck (the paper's "mega-baud rates" with impedance
    /// control).
    pub fn production() -> Self {
        SerialLink { baud: 4_000_000 }
    }

    /// Bytes per millisecond (the paper quotes "11 bytes per millisecond"
    /// for the prototype; exactly 11.52).
    pub fn bytes_per_ms(&self) -> f64 {
        self.baud as f64 / BITS_PER_BYTE / 1000.0
    }

    /// Time to ship `bytes` over the link, in milliseconds.
    pub fn transfer_ms(&self, bytes: u32) -> f64 {
        f64::from(bytes) * BITS_PER_BYTE * 1000.0 / self.baud as f64
    }

    /// Total programming time: the transfer and the page writes are
    /// pipelined (the bootloader writes page `k` while page `k+1` streams),
    /// so the wall time is the slower of the two plus one page latency.
    pub fn programming_ms(&self, bytes: u32) -> f64 {
        let transfer = self.transfer_ms(bytes);
        let pages = bytes.div_ceil(PAGE_BYTES);
        let program = f64::from(pages) * PAGE_PROGRAM_MS;
        transfer.max(program) + PAGE_PROGRAM_MS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_rate_matches_paper() {
        let link = SerialLink::prototype();
        // "a maximum of 11 bytes per millisecond"
        assert!((link.bytes_per_ms() - 11.52).abs() < 0.001);
    }

    #[test]
    fn table2_times_come_from_transfer() {
        let link = SerialLink::prototype();
        // The paper's Table II values are the serial-transfer times of the
        // MAVR-toolchain images to within a millisecond.
        for (bytes, paper_ms) in [
            (221_294u32, 19_209.0),
            (244_292, 21_206.0),
            (177_556, 15_412.0),
        ] {
            let t = link.transfer_ms(bytes);
            assert!(
                (t - paper_ms).abs() <= 1.0,
                "{bytes} bytes -> {t:.1} ms, paper {paper_ms}"
            );
        }
    }

    #[test]
    fn production_startup_near_four_seconds() {
        // §VII-B1: "A conservative estimate on a production PCB … would be
        // 4 seconds as the bottleneck becomes how fast we can write the
        // randomized binary to the internal flash."
        let link = SerialLink::production();
        let t = link.programming_ms(221_294);
        assert!(
            (3_000.0..=5_000.0).contains(&t),
            "production startup {t:.0} ms should be ~4 s"
        );
        // And the page writes, not the wire, set the pace.
        assert!(link.transfer_ms(221_294) < t);
    }

    #[test]
    fn prototype_is_transfer_bound() {
        let link = SerialLink::prototype();
        let t = link.programming_ms(221_294);
        let wire = link.transfer_ms(221_294);
        assert!(t >= wire && t < wire + 2.0 * PAGE_PROGRAM_MS);
    }
}
