//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so this crate provides the
//! API slice the workspace's `harness = false` benches use: [`Criterion`],
//! [`Criterion::benchmark_group`] with throughput/sample-size knobs,
//! [`Bencher::iter`] / [`Bencher::iter_batched`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model, much simpler than real criterion but honest:
//! each benchmark is warmed up, the per-iteration cost is estimated, the
//! iteration count is calibrated so one sample lasts a few milliseconds,
//! and `sample_size` samples are timed. The median sample is reported as
//! ns/iter (median resists scheduler noise better than the mean), together
//! with element/byte throughput when configured. There is no statistical
//! regression analysis and no HTML report.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Time budget for one measured sample. Small enough that a full bench
/// suite stays interactive, large enough that `Instant` resolution is
/// irrelevant.
const SAMPLE_BUDGET: Duration = Duration::from_millis(5);
const WARM_UP: Duration = Duration::from_millis(20);

/// Work performed per iteration, used to derive rates from timings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Logical items processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Hint for how batched setup output should be amortized. The shim times
/// one routine call per batch regardless, so the variants only document
/// intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Cheap-to-copy input.
    SmallInput,
    /// Expensive input; setup dominates, so batches stay small.
    LargeInput,
    /// Re-run setup for every iteration.
    PerIteration,
}

/// Passed to every benchmark closure; owns the measurement loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` for the calibrated number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` over inputs built by `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// One measured benchmark: calibrate, sample, report.
fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: F,
) {
    // Warm-up / calibration: grow the iteration count until one call of the
    // closure exceeds the warm-up budget, then size samples off the
    // estimated per-iteration cost.
    let mut iters = 1u64;
    let per_iter = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= WARM_UP || iters >= 1 << 30 {
            break b.elapsed.as_secs_f64() / iters as f64;
        }
        iters = iters.saturating_mul(4);
    };
    let sample_iters = ((SAMPLE_BUDGET.as_secs_f64() / per_iter.max(1e-9)) as u64).max(1);

    let mut samples: Vec<f64> = (0..sample_size.max(3))
        .map(|_| {
            let mut b = Bencher {
                iters: sample_iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / sample_iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];

    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.3} Melem/s)", n as f64 / median / 1e6)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.3} MiB/s)", n as f64 / median / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("{id:<44} {:>14.1} ns/iter{rate}", median * 1e9);
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, None, 10, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            throughput: None,
            sample_size: 10,
        }
    }

    /// Finalize; the shim has no end-of-run summary.
    pub fn final_summary(&mut self) {}
}

/// A group sharing throughput/sample-size settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declare the work done per iteration for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.throughput,
            self.sample_size,
            f,
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Mirror of `criterion_group!`: defines a function running the listed
/// benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Mirror of `criterion_main!`: defines `main` running each group.
///
/// `cargo bench` passes `--bench` (and `cargo test` passes harness flags)
/// to the binary; all arguments are accepted and ignored. Under `cargo
/// test` the measurement loops are skipped entirely so the test suite
/// stays fast — benches then only assert that they build and set up.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let test_mode = std::env::args().any(|a| a == "--test");
            if test_mode {
                return;
            }
            $( $group(); )+
            $crate::Criterion::default().final_summary();
        }
    };
}
