//! Differential properties of the block-fused execution engine: a machine
//! dispatching fused blocks (with compiled micro-op streams, folded flag
//! computation and terminator tail-stepping) must be architecturally
//! indistinguishable from one stepping the predecode cache per instruction
//! *and* from one decoding flash on every fetch — a three-way oracle, run
//! through interrupts, a live watchdog, timer rewrites, heartbeat I/O and
//! mid-run reflashes.

use avr_core::encode::encode_to_bytes;
use avr_core::{Insn, PtrReg, Reg, YZ};
use avr_sim::timer::{TCCR0B_ADDR, TCNT0_ADDR, TOV0};
use avr_sim::{Fault, Machine};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

/// Word address the structured programs run from, clear of the vector table.
const PROG_WORD: u32 = 64;

fn arch(m: &Machine) -> (u32, u8, u16, u64, Option<Fault>, u64, u64) {
    (
        m.pc(),
        m.sreg(),
        m.sp(),
        m.cycles(),
        m.fault(),
        m.insns_retired,
        m.interrupts_taken,
    )
}

/// The three engines under test, built by the same setup closure:
/// block-fused, predecoded-stepping, and uncached-decoding.
fn triple(setup: impl Fn(&mut Machine)) -> [Machine; 3] {
    let mut fused = Machine::new_atmega2560();
    let mut predecoded = Machine::new_atmega2560();
    predecoded.set_block_fusion(false);
    let mut uncached = Machine::new_atmega2560();
    uncached.set_predecode(false);
    setup(&mut fused);
    setup(&mut predecoded);
    setup(&mut uncached);
    [fused, predecoded, uncached]
}

/// Drive all three machines through the same batch schedule and assert
/// identical architectural state at every batch boundary, then full state
/// equality (data space, peripherals, timer residuals) at the end. Batches
/// larger than a block's cycle cost are what let fused dispatch engage;
/// 1-cycle batches squeeze every block out through the horizon check, so a
/// mixed schedule exercises both dispatch regimes and the transitions.
fn lockstep_batched(ms: &mut [Machine; 3], batches: &[u64]) {
    for (i, &budget) in batches.iter().enumerate() {
        let exits: Vec<_> = ms.iter_mut().map(|m| m.run(budget)).collect();
        assert_eq!(
            exits[0], exits[1],
            "fused/predecoded exit diverged at batch {i}"
        );
        assert_eq!(
            exits[1], exits[2],
            "predecoded/uncached exit diverged at batch {i}"
        );
        assert_eq!(
            arch(&ms[0]),
            arch(&ms[1]),
            "fused/predecoded state diverged at batch {i}"
        );
        assert_eq!(
            arch(&ms[1]),
            arch(&ms[2]),
            "predecoded/uncached state diverged at batch {i}"
        );
        if ms[0].fault().is_some() {
            break;
        }
    }
    let s0 = ms[0].capture_state();
    assert_eq!(s0, ms[1].capture_state(), "fused/predecoded full state");
    assert_eq!(s0, ms[2].capture_state(), "predecoded/uncached full state");
}

/// Instruction soup rich in fusable bodies: straight-line ALU runs, stack
/// traffic, pointer loads/stores, timer reads and writes, heartbeat port
/// I/O, and the control flow that terminates blocks.
fn insn_strategy() -> impl Strategy<Value = Insn> {
    prop_oneof![
        (any::<u8>()).prop_map(|k| Insn::Ldi { d: Reg::R24, k }),
        (any::<u8>()).prop_map(|k| Insn::Ldi { d: Reg::R25, k }),
        Just(Insn::Add {
            d: Reg::R24,
            r: Reg::R25
        }),
        Just(Insn::Adc {
            d: Reg::R24,
            r: Reg::R25
        }),
        Just(Insn::Sub {
            d: Reg::R24,
            r: Reg::R25
        }),
        Just(Insn::Cp {
            d: Reg::R24,
            r: Reg::R25
        }),
        (any::<u8>()).prop_map(|k| Insn::Subi { d: Reg::R24, k }),
        Just(Insn::Mul {
            d: Reg::R24,
            r: Reg::R25
        }),
        Just(Insn::Inc { d: Reg::R24 }),
        Just(Insn::Lsr { d: Reg::R24 }),
        Just(Insn::Push { r: Reg::R24 }),
        Just(Insn::Pop { d: Reg::R25 }),
        Just(Insn::Nop),
        Just(Insn::Wdr),
        Just(Insn::Bset { s: 7 }), // sei
        Just(Insn::Bclr { s: 7 }), // cli
        // X -> scratch SRAM, then indirect traffic through it.
        Just(Insn::Ldi { d: Reg::R26, k: 0 }),
        Just(Insn::Ldi { d: Reg::R27, k: 3 }),
        Just(Insn::St {
            ptr: PtrReg::XPostInc,
            r: Reg::R24
        }),
        Just(Insn::Ld {
            d: Reg::R25,
            ptr: PtrReg::XPostInc
        }),
        Just(Insn::Ldd {
            d: Reg::R24,
            idx: YZ::Z,
            q: 2
        }),
        Just(Insn::Adiw { d: Reg::R26, k: 1 }),
        // Timer reads (sync-offset micro-ops) and rewrites underneath the
        // fused engine's overflow fit check.
        Just(Insn::Lds {
            d: Reg::R24,
            k: TCNT0_ADDR
        }),
        Just(Insn::Sts {
            k: TCCR0B_ADDR,
            r: Reg::R24
        }),
        Just(Insn::Sts {
            k: TCNT0_ADDR,
            r: Reg::R25
        }),
        // Heartbeat port traffic: cycle-stamped observer micro-ops.
        Just(Insn::Out {
            a: 0x05,
            r: Reg::R24
        }), // PORTB
        Just(Insn::Sbi { a: 0x05, b: 5 }),
        Just(Insn::Cbi { a: 0x05, b: 5 }),
        Just(Insn::In {
            d: Reg::R25,
            a: 0x05
        }),
        // Block terminators.
        Just(Insn::Cpse {
            d: Reg::R24,
            r: Reg::R25
        }),
        Just(Insn::Sbrs { r: Reg::R24, b: 0 }),
        Just(Insn::Brbs { s: 1, k: 2 }),
        Just(Insn::Rjmp { k: 1 }),
        Just(Insn::Call { k: PROG_WORD }),
        Just(Insn::Ret),
    ]
}

/// A batch schedule mixing 1-cycle crawls with block-sized strides.
fn batch_strategy() -> impl Strategy<Value = Vec<u64>> {
    pvec(prop_oneof![Just(1u64), 2u64..40, 40u64..400], 1..24)
}

proptest! {
    /// Raw random words: most decode to garbage and fault quickly — the
    /// fused engine must fault at the identical instruction and cycle.
    #[test]
    fn raw_words_execute_identically(
        words in pvec(any::<u16>(), 1..256),
        batches in batch_strategy(),
    ) {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let mut ms = triple(|m| m.load_flash(0, &bytes));
        lockstep_batched(&mut ms, &batches);
    }

    /// Structured programs with the Timer0 overflow interrupt live, a
    /// `reti` handler at the vector, and an armed watchdog: block dispatch
    /// must respect every event horizon — IRQ delivery points, watchdog
    /// deadlines, timer overflow — exactly as per-instruction stepping
    /// does, even while the program rewrites the timer underneath it.
    #[test]
    fn programs_with_irqs_and_watchdog_execute_identically(
        prog in pvec(insn_strategy(), 1..48),
        prescale in 1u8..=3,
        wd_timeout in 200u64..4000,
        batches in batch_strategy(),
    ) {
        let bytes = encode_to_bytes(&prog).unwrap();
        let mut ms = triple(|m| {
            m.load_flash(avr_sim::timer::TIMER0_OVF_VECTOR * 4,
                         &encode_to_bytes(&[Insn::Reti]).unwrap());
            m.load_flash(PROG_WORD * 2, &bytes);
            m.set_pc_bytes(PROG_WORD * 2);
            m.set_sreg(1 << 7); // I
            m.timer0.tccr_b = prescale;
            m.timer0.timsk = TOV0;
            m.watchdog.enable(wd_timeout, 0);
        });
        lockstep_batched(&mut ms, &batches);
    }

    /// One big fused batch against the same fused engine crawling 1 cycle
    /// at a time: the horizon check squeezes every block out of the crawl,
    /// so this pins the fused/stepped boundary inside a single engine.
    #[test]
    fn batched_run_matches_crawled_run(
        prog in pvec(insn_strategy(), 1..48),
        budget in 1u64..20_000,
    ) {
        let bytes = encode_to_bytes(&prog).unwrap();
        let setup = |m: &mut Machine| {
            m.load_flash(PROG_WORD * 2, &bytes);
            m.set_pc_bytes(PROG_WORD * 2);
            m.watchdog.enable(5_000, 0);
        };
        let mut batched = Machine::new_atmega2560();
        let mut crawled = Machine::new_atmega2560();
        setup(&mut batched);
        setup(&mut crawled);
        let a = batched.run(budget);
        let mut b = crawled.run(1);
        while crawled.cycles() < budget && crawled.fault().is_none() {
            b = crawled.run(1);
        }
        prop_assert_eq!(a, b);
        prop_assert_eq!(batched.capture_state(), crawled.capture_state());
    }

    /// Reflash coherence: after blocks have been discovered and dispatched,
    /// erase the chip and load a different program — stale fused blocks
    /// must not survive the MAVR-style recovery reflash.
    #[test]
    fn reflash_invalidates_stale_blocks(
        prog_a in pvec(insn_strategy(), 1..32),
        prog_b in pvec(insn_strategy(), 1..32),
        batches in batch_strategy(),
    ) {
        let bytes_a = encode_to_bytes(&prog_a).unwrap();
        let bytes_b = encode_to_bytes(&prog_b).unwrap();
        let mut ms = triple(|m| {
            m.load_flash(PROG_WORD * 2, &bytes_a);
            m.set_pc_bytes(PROG_WORD * 2);
        });
        lockstep_batched(&mut ms, &batches);
        // MAVR-style recovery: wipe, flash the re-randomized image, reset.
        for m in ms.iter_mut() {
            m.erase_flash();
            m.load_flash(PROG_WORD * 2, &bytes_b);
            m.reset();
            m.set_pc_bytes(PROG_WORD * 2);
        }
        lockstep_batched(&mut ms, &batches);
    }

    /// In-place patching (no erase): overwrite part of the live program —
    /// per-page invalidation must drop exactly the overlapping blocks.
    #[test]
    fn patch_invalidates_overlapping_blocks(
        prog_a in pvec(insn_strategy(), 8..32),
        prog_b in pvec(insn_strategy(), 1..8),
        patch_at in 0u32..16,
        batches in batch_strategy(),
    ) {
        let bytes_a = encode_to_bytes(&prog_a).unwrap();
        let bytes_b = encode_to_bytes(&prog_b).unwrap();
        let mut ms = triple(|m| {
            m.load_flash(PROG_WORD * 2, &bytes_a);
            m.set_pc_bytes(PROG_WORD * 2);
        });
        lockstep_batched(&mut ms, &batches);
        for m in ms.iter_mut() {
            m.load_flash((PROG_WORD + patch_at) * 2, &bytes_b);
            m.reset();
            m.set_pc_bytes(PROG_WORD * 2);
        }
        lockstep_batched(&mut ms, &batches);
    }
}

/// The cycle profiler needs per-instruction attribution, so enabling it
/// must force the engine off the fused path entirely — and the folded
/// profile it emits must be byte-identical whether fusion is configured on
/// or off.
#[test]
fn cycle_profiler_output_is_identical_under_fusion() {
    use avr_core::device::ATMEGA2560;
    use avr_core::image::{FirmwareImage, Symbol, SymbolKind};

    // main: ldi/ldi, call helper, loop; helper: add, inc, ret.
    let main = [
        Insn::Ldi { d: Reg::R24, k: 1 },
        Insn::Ldi { d: Reg::R25, k: 2 },
        Insn::Call { k: PROG_WORD + 8 },
        Insn::Rjmp { k: -5 },
    ];
    let helper = [
        Insn::Add {
            d: Reg::R24,
            r: Reg::R25,
        },
        Insn::Inc { d: Reg::R24 },
        Insn::Ret,
    ];
    let mut image = FirmwareImage::new(ATMEGA2560);
    image.symbols = vec![
        Symbol {
            name: "main".into(),
            addr: PROG_WORD * 2,
            size: 10,
            kind: SymbolKind::Function,
        },
        Symbol {
            name: "helper".into(),
            addr: (PROG_WORD + 8) * 2,
            size: 6,
            kind: SymbolKind::Function,
        },
    ];

    let run_one = |fusion: bool| {
        let mut m = Machine::new_atmega2560();
        m.set_block_fusion(fusion);
        m.load_flash(PROG_WORD * 2, &encode_to_bytes(&main).unwrap());
        m.load_flash((PROG_WORD + 8) * 2, &encode_to_bytes(&helper).unwrap());
        m.set_pc_bytes(PROG_WORD * 2);
        m.enable_cycle_profile(&image);
        m.enable_profile(64);
        m.run(10_000);
        let folded = m.cycle_profile().unwrap().folded();
        let hot = m.profile().unwrap().hot(16);
        let hits = m.block_stats().hits;
        (folded, hot, m.capture_state(), hits)
    };
    let (folded_on, hot_on, state_on, hits_on) = run_one(true);
    let (folded_off, hot_off, state_off, hits_off) = run_one(false);
    assert_eq!(
        folded_on, folded_off,
        "folded profile must not depend on fusion"
    );
    assert_eq!(
        hot_on, hot_off,
        "hot-PC histogram must not depend on fusion"
    );
    assert_eq!(state_on, state_off);
    assert_eq!(hits_on, 0, "profiling forces the per-instruction path");
    assert_eq!(hits_off, 0);
    assert!(!folded_on.is_empty() && folded_on.contains("helper"));
}

/// Fusion is an engine optimization, not an observable: a machine with
/// fusion disabled mid-fleet must produce the same counters.
#[test]
fn block_stats_are_observable_but_inert() {
    let prog = [
        Insn::Ldi { d: Reg::R24, k: 1 },
        Insn::Ldi { d: Reg::R25, k: 2 },
        Insn::Add {
            d: Reg::R24,
            r: Reg::R25,
        },
        Insn::Rjmp { k: -4 },
    ];
    let bytes = encode_to_bytes(&prog).unwrap();
    let mut fused = Machine::new_atmega2560();
    let mut plain = Machine::new_atmega2560();
    plain.set_block_fusion(false);
    for m in [&mut fused, &mut plain] {
        m.load_flash(0, &bytes);
        m.run(1000);
    }
    assert_eq!(fused.capture_state(), plain.capture_state());
    let fs = fused.block_stats();
    assert!(fs.hits > 0, "fused engine dispatched blocks");
    assert_eq!(
        plain.block_stats().hits,
        0,
        "disabled engine dispatched none"
    );
}
