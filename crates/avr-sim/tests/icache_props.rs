//! Differential properties of the predecoded instruction cache: a machine
//! executing through the cache (and the fast run loop built on it) must be
//! architecturally indistinguishable from one decoding flash on every fetch
//! — on random garbage, on structured programs with interrupts and a live
//! watchdog, and across flash mutations (erase + reflash).

use avr_core::encode::encode_to_bytes;
use avr_core::{Insn, Reg};
use avr_sim::timer::{TCCR0B_ADDR, TCNT0_ADDR, TOV0};
use avr_sim::{Fault, Machine};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

/// Word address the structured programs run from, clear of the vector table.
const PROG_WORD: u32 = 64;

fn arch(m: &Machine) -> (u32, u8, u16, u64, Option<Fault>, u64, u64) {
    (
        m.pc(),
        m.sreg(),
        m.sp(),
        m.cycles(),
        m.fault(),
        m.insns_retired,
        m.interrupts_taken,
    )
}

/// A cached/uncached pair built by the same setup closure.
fn pair(setup: impl Fn(&mut Machine)) -> (Machine, Machine) {
    let mut cached = Machine::new_atmega2560();
    let mut reference = Machine::new_atmega2560();
    reference.set_predecode(false);
    setup(&mut cached);
    setup(&mut reference);
    (cached, reference)
}

/// Drive both machines one instruction at a time — the cached one through
/// the fast run loop, the reference through the careful `step()` loop — and
/// assert identical architectural state after every instruction.
fn lockstep(cached: &mut Machine, reference: &mut Machine, max_steps: usize) {
    for step in 0..max_steps {
        let a = cached.run(1);
        let b = reference.run(1);
        assert_eq!(a, b, "run exit diverged at step {step}");
        assert_eq!(
            arch(cached),
            arch(reference),
            "architectural state diverged at step {step}"
        );
        if cached.fault().is_some() {
            break;
        }
    }
}

fn insn_strategy() -> impl Strategy<Value = Insn> {
    prop_oneof![
        (any::<u8>()).prop_map(|k| Insn::Ldi { d: Reg::R24, k }),
        (any::<u8>()).prop_map(|k| Insn::Ldi { d: Reg::R25, k }),
        Just(Insn::Add {
            d: Reg::R24,
            r: Reg::R25
        }),
        Just(Insn::Push { r: Reg::R24 }),
        Just(Insn::Pop { d: Reg::R25 }),
        Just(Insn::Inc { d: Reg::R24 }),
        Just(Insn::Nop),
        Just(Insn::Wdr),
        Just(Insn::Bset { s: 7 }), // sei
        Just(Insn::Bclr { s: 7 }), // cli
        Just(Insn::Cpse {
            d: Reg::R24,
            r: Reg::R25
        }),
        Just(Insn::Sbrs { r: Reg::R24, b: 0 }),
        Just(Insn::Rjmp { k: 1 }),
        Just(Insn::Call { k: PROG_WORD }),
        Just(Insn::Ret),
        // Poke the timer mid-run: retune the prescaler, rewind the counter.
        Just(Insn::Sts {
            k: TCCR0B_ADDR,
            r: Reg::R24
        }),
        Just(Insn::Sts {
            k: TCNT0_ADDR,
            r: Reg::R25
        }),
    ]
}

proptest! {
    /// Raw random words: most decode to garbage and fault quickly, which is
    /// exactly the regime ROP payload replay puts the simulator in.
    #[test]
    fn raw_words_execute_identically(words in pvec(any::<u16>(), 1..256)) {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let (mut cached, mut reference) = pair(|m| m.load_flash(0, &bytes));
        lockstep(&mut cached, &mut reference, 512);
    }

    /// Structured programs with the Timer0 overflow interrupt live, a `reti`
    /// handler at the vector, and an armed watchdog: the fast loop's event
    /// horizons and per-instruction IRQ dispatch must match `step()` even
    /// while the program rewrites the timer underneath them.
    #[test]
    fn programs_with_irqs_and_watchdog_execute_identically(
        prog in pvec(insn_strategy(), 1..48),
        prescale in 1u8..=3,
        wd_timeout in 200u64..4000,
    ) {
        let bytes = encode_to_bytes(&prog).unwrap();
        let (mut cached, mut reference) = pair(|m| {
            // Vector word address is TIMER0_OVF_VECTOR * 2 (4-byte slots).
            m.load_flash(avr_sim::timer::TIMER0_OVF_VECTOR * 4,
                         &encode_to_bytes(&[Insn::Reti]).unwrap());
            m.load_flash(PROG_WORD * 2, &bytes);
            m.set_pc_bytes(PROG_WORD * 2);
            m.set_sreg(1 << 7); // I
            m.timer0.tccr_b = prescale;
            m.timer0.timsk = TOV0;
            m.watchdog.enable(wd_timeout, 0);
        });
        lockstep(&mut cached, &mut reference, 400);
    }

    /// One fast-loop batch against the careful per-step loop: same exit,
    /// same final state — the hoisted checks must not change behaviour.
    #[test]
    fn batched_run_matches_stepped_run(
        prog in pvec(insn_strategy(), 1..48),
        budget in 1u64..20_000,
    ) {
        let bytes = encode_to_bytes(&prog).unwrap();
        let (mut cached, mut reference) = pair(|m| {
            m.load_flash(PROG_WORD * 2, &bytes);
            m.set_pc_bytes(PROG_WORD * 2);
            m.watchdog.enable(5_000, 0);
        });
        let a = cached.run(budget);
        let b = reference.run(budget);
        prop_assert_eq!(a, b);
        prop_assert_eq!(arch(&cached), arch(&reference));
    }

    /// Reflash coherence: after the cache has been built and used, erase the
    /// chip and load a different program — stale entries must not survive.
    #[test]
    fn reflash_invalidates_stale_entries(
        prog_a in pvec(insn_strategy(), 1..32),
        prog_b in pvec(insn_strategy(), 1..32),
    ) {
        let bytes_a = encode_to_bytes(&prog_a).unwrap();
        let bytes_b = encode_to_bytes(&prog_b).unwrap();
        let (mut cached, mut reference) = pair(|m| {
            m.load_flash(PROG_WORD * 2, &bytes_a);
            m.set_pc_bytes(PROG_WORD * 2);
        });
        lockstep(&mut cached, &mut reference, 200);
        // MAVR-style recovery: wipe, flash the re-randomized image, reset.
        for m in [&mut cached, &mut reference] {
            m.erase_flash();
            m.load_flash(PROG_WORD * 2, &bytes_b);
            m.reset();
            m.set_pc_bytes(PROG_WORD * 2);
        }
        lockstep(&mut cached, &mut reference, 200);
    }
}
