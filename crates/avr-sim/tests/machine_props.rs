//! Property tests driving the *machine* (not the ALU helpers directly):
//! instruction semantics, stack discipline, and memory-mapping invariants
//! that the attacks depend on.

use avr_core::encode::encode_to_bytes;
use avr_core::{sreg, Insn, Reg};
use avr_sim::Machine;
use proptest::prelude::*;

fn run_prog(prog: &[Insn]) -> Machine {
    let mut m = Machine::new_atmega2560();
    let mut p = prog.to_vec();
    p.push(Insn::Break);
    m.load_flash(0, &encode_to_bytes(&p).unwrap());
    m.run(10_000);
    m
}

fn flag(m: &Machine, bit: u8) -> bool {
    m.sreg() & (1 << bit) != 0
}

proptest! {
    #[test]
    fn add_semantics(a in any::<u8>(), b in any::<u8>()) {
        let m = run_prog(&[
            Insn::Ldi { d: Reg::R24, k: a },
            Insn::Ldi { d: Reg::R25, k: b },
            Insn::Add { d: Reg::R24, r: Reg::R25 },
        ]);
        prop_assert_eq!(m.reg(Reg::R24), a.wrapping_add(b));
        prop_assert_eq!(flag(&m, sreg::C), (u16::from(a) + u16::from(b)) > 0xff);
        prop_assert_eq!(flag(&m, sreg::Z), a.wrapping_add(b) == 0);
        prop_assert_eq!(flag(&m, sreg::N), a.wrapping_add(b) & 0x80 != 0);
        let signed = (a as i8).checked_add(b as i8).is_none();
        prop_assert_eq!(flag(&m, sreg::V), signed);
        prop_assert_eq!(flag(&m, sreg::S), flag(&m, sreg::N) != flag(&m, sreg::V));
    }

    #[test]
    fn sub_and_cp_agree_on_flags(a in any::<u8>(), b in any::<u8>()) {
        let sub = run_prog(&[
            Insn::Ldi { d: Reg::R24, k: a },
            Insn::Ldi { d: Reg::R25, k: b },
            Insn::Sub { d: Reg::R24, r: Reg::R25 },
        ]);
        let cp = run_prog(&[
            Insn::Ldi { d: Reg::R24, k: a },
            Insn::Ldi { d: Reg::R25, k: b },
            Insn::Cp { d: Reg::R24, r: Reg::R25 },
        ]);
        prop_assert_eq!(sub.sreg(), cp.sreg(), "cp is sub without writeback");
        prop_assert_eq!(sub.reg(Reg::R24), a.wrapping_sub(b));
        prop_assert_eq!(cp.reg(Reg::R24), a, "cp must not write");
        prop_assert_eq!(flag(&sub, sreg::C), b > a);
    }

    #[test]
    fn adc_chain_implements_16bit_add(a in any::<u16>(), b in any::<u16>()) {
        let [al, ah] = a.to_le_bytes();
        let [bl, bh] = b.to_le_bytes();
        let m = run_prog(&[
            Insn::Ldi { d: Reg::R24, k: al },
            Insn::Ldi { d: Reg::R25, k: ah },
            Insn::Ldi { d: Reg::R22, k: bl },
            Insn::Ldi { d: Reg::R23, k: bh },
            Insn::Add { d: Reg::R24, r: Reg::R22 },
            Insn::Adc { d: Reg::R25, r: Reg::R23 },
        ]);
        let sum = a.wrapping_add(b);
        prop_assert_eq!(m.reg_pair(Reg::R24), sum);
        prop_assert_eq!(flag(&m, sreg::C), u32::from(a) + u32::from(b) > 0xffff);
    }

    #[test]
    fn sbc_chain_implements_16bit_sub_with_sticky_z(a in any::<u16>(), b in any::<u16>()) {
        let [al, ah] = a.to_le_bytes();
        let [bl, bh] = b.to_le_bytes();
        let m = run_prog(&[
            Insn::Ldi { d: Reg::R24, k: al },
            Insn::Ldi { d: Reg::R25, k: ah },
            Insn::Ldi { d: Reg::R22, k: bl },
            Insn::Ldi { d: Reg::R23, k: bh },
            Insn::Sub { d: Reg::R24, r: Reg::R22 },
            Insn::Sbc { d: Reg::R25, r: Reg::R23 },
        ]);
        prop_assert_eq!(m.reg_pair(Reg::R24), a.wrapping_sub(b));
        prop_assert_eq!(flag(&m, sreg::C), b > a);
        // Sticky Z: the 16-bit result is zero iff Z survived both halves.
        prop_assert_eq!(flag(&m, sreg::Z), a == b);
    }

    #[test]
    fn mul_is_16bit_product(a in any::<u8>(), b in any::<u8>()) {
        let m = run_prog(&[
            Insn::Ldi { d: Reg::R24, k: a },
            Insn::Ldi { d: Reg::R25, k: b },
            Insn::Mul { d: Reg::R24, r: Reg::R25 },
        ]);
        prop_assert_eq!(m.reg_pair(Reg::R0), u16::from(a) * u16::from(b));
    }

    #[test]
    fn push_pop_is_lifo(values in proptest::collection::vec(any::<u8>(), 1..16)) {
        // Push all the values from r24, then pop them back into r24 and
        // store each; memory ends up reversed.
        let mut prog = Vec::new();
        for &v in &values {
            prog.push(Insn::Ldi { d: Reg::R24, k: v });
            prog.push(Insn::Push { r: Reg::R24 });
        }
        for i in 0..values.len() {
            prog.push(Insn::Pop { d: Reg::R24 });
            prog.push(Insn::Sts { k: 0x0400 + i as u16, r: Reg::R24 });
        }
        let m = run_prog(&prog);
        let popped: Vec<u8> = (0..values.len())
            .map(|i| m.peek_data(0x0400 + i as u16))
            .collect();
        let mut reversed = values.clone();
        reversed.reverse();
        prop_assert_eq!(popped, reversed);
        prop_assert_eq!(m.sp(), 0x21ff, "stack balanced");
    }

    #[test]
    fn registers_alias_low_data_space(r in 2u8..=31, v in any::<u8>()) {
        // Store through data space into a register address; read the
        // register — the aliasing the paper's gadgets rely on.
        let m = run_prog(&[
            Insn::Ldi { d: Reg::R24, k: v },
            Insn::Sts { k: u16::from(r), r: Reg::R24 },
        ]);
        if r != 24 {
            prop_assert_eq!(m.reg(Reg::new(r)), v);
        }
        prop_assert_eq!(m.peek_data(u16::from(r)), m.reg(Reg::new(r)));
    }

    #[test]
    fn sp_writes_via_out_take_effect(sp in 0x0200u16..0x2100) {
        let [lo, hi] = sp.to_le_bytes();
        let m = run_prog(&[
            Insn::Ldi { d: Reg::R28, k: lo },
            Insn::Ldi { d: Reg::R29, k: hi },
            Insn::Out { a: 0x3e, r: Reg::R29 },
            Insn::Out { a: 0x3d, r: Reg::R28 },
        ]);
        prop_assert_eq!(m.sp(), sp);
    }

    #[test]
    fn call_ret_round_trip_any_target(target_word in 0x40u32..0x1000) {
        // call <target>; (at target) ret; returns to the next instruction.
        let mut m = Machine::new_atmega2560();
        m.load_flash(
            0,
            &encode_to_bytes(&[Insn::Call { k: target_word }, Insn::Break]).unwrap(),
        );
        m.load_flash(target_word * 2, &encode_to_bytes(&[Insn::Ret]).unwrap());
        let exit = m.run(10_000);
        let returned_to_next =
            matches!(exit, avr_sim::RunExit::Faulted(avr_sim::Fault::Break { addr: 4 }));
        prop_assert!(returned_to_next, "exit was {exit:?}");
        prop_assert_eq!(m.sp(), 0x21ff);
    }

    #[test]
    fn lsr_ror_pair_shifts_16bit(v in any::<u16>()) {
        let [lo, hi] = v.to_le_bytes();
        let m = run_prog(&[
            Insn::Ldi { d: Reg::R25, k: hi },
            Insn::Ldi { d: Reg::R24, k: lo },
            Insn::Lsr { d: Reg::R25 },
            Insn::Ror { d: Reg::R24 },
        ]);
        prop_assert_eq!(m.reg_pair(Reg::R24), v >> 1);
        prop_assert_eq!(flag(&m, sreg::C), v & 1 != 0);
    }
}
