//! Fused basic-block cache backing the block-fused fast run loop.
//!
//! [`avr_core::block`] supplies the generic walker; this module supplies the
//! ATmega2560 *address policy* — which memory effects are safe inside a
//! block — and the cache that maps block-start word addresses to fused
//! records. The policy encodes exactly the hazards the simulator's
//! per-instruction loop re-checks every step:
//!
//! * writes that can change interrupt delivery (`SREG`, which also arms the
//!   one-instruction `irq_delay` window; `TIMSK0`; `sei` via `bset 7`) or
//!   retime the event horizon (`TCCR0B`, `TCNT0`, `TIFR0`) end the block —
//!   the boundary check after the block sees their effect exactly where the
//!   per-instruction loop would;
//! * indirect stores (`st`/`std`) end the block because their target is
//!   unknowable at scan time.
//!
//! Everything else — the overwhelming majority of straight-line code — is
//! *pure*, and pure blocks are **compiled** at discovery: each instruction
//! lowers to a [`MicroOp`] with pre-resolved operands (register numbers,
//! I/O ports rewritten to data addresses, bit indices to masks), and a
//! backward flag-liveness pass over the AVR dataflow rewrites ALU ops whose
//! SREG result is overwritten before any read to flag-free variants — or
//! deletes them outright when (like `cp`/`cpc`) flags were their only
//! effect. This is exact because a pure block can neither fault nor be
//! interrupted mid-block, so intermediate SREG values are unobservable.
//!
//! Three instruction families that look impure compile exactly anyway:
//!
//! * `push`/`pop`: the compiler records the block's stack-pointer
//!   excursion, and dispatch proves the whole excursion in bounds with one
//!   range check (falling back to the careful per-instruction path when it
//!   cannot);
//! * loads that may observe Timer0 (indirect loads, direct timer-block
//!   reads): their micro-ops carry the cycle offset of the instructions
//!   before them, and the interpreter advances the timer to exactly that
//!   point before a read that hits `TCNT0`/`TIFR0` — batching is exact
//!   because `Timer0::advance` is linear;
//! * cycle observers (`wdr` pets, `PORTB` heartbeat stores): their
//!   micro-ops carry the cycle offset *through* themselves, recovering the
//!   exact mid-block cycle count from the block-entry value.
//!
//! The fused dispatch then batches `pc`, `cycles`, `insns_retired` and the
//! (remaining) timer advance to one update per block.

use avr_core::block::{scan_block, structural_end, FuseStep, MAX_BLOCK_WORDS};
use avr_core::{io, sreg, Insn, Predecoded, PtrReg, Reg};

use crate::adc::{ADCH_ADDR, ADCL_ADDR, ADCSRA_ADDR, ADMUX_ADDR};
use crate::alu;
use crate::periph::PORTB_ADDR;
use crate::timer::{TCCR0B_ADDR, TCNT0_ADDR, TIFR0_ADDR, TIMSK0_ADDR};

const SREG_DATA: u16 = io::to_data_address(io::SREG);
const SPL_DATA: u16 = io::to_data_address(io::SPL);
const SPH_DATA: u16 = io::to_data_address(io::SPH);

/// Verdict for a data-space *write* to a statically known address.
fn write_policy(addr: u16) -> FuseStep {
    match addr {
        // SREG writes arm irq_delay; timer-block writes move the event
        // horizon or the pending-interrupt state. ADC-block writes start
        // conversions (a new event horizon) or change ADIF/ADIE delivery,
        // so they end blocks for exactly the same reason.
        SREG_DATA | TIMSK0_ADDR | TCCR0B_ADDR | TCNT0_ADDR | TIFR0_ADDR => FuseStep::End,
        ADCL_ADDR..=ADMUX_ADDR => FuseStep::End,
        // The heartbeat monitor timestamps PORTB writes with the cycle
        // counter; the compiled micro-op carries the exact offset.
        _ => FuseStep::Fuse {
            timer_read: false,
            pure: true,
        },
    }
}

/// Verdict for a data-space *read* from a statically known address.
fn read_policy(addr: u16) -> FuseStep {
    match addr {
        // Timer registers must be read with the timer advanced to "now";
        // the compiled micro-op carries the sync offset. The ADC's result
        // and status registers are cycle-dependent the same way (an
        // in-flight conversion completes at a particular cycle).
        TCNT0_ADDR | TCCR0B_ADDR | TIMSK0_ADDR | TIFR0_ADDR => FuseStep::Fuse {
            timer_read: true,
            pure: true,
        },
        ADCL_ADDR | ADCH_ADDR | ADCSRA_ADDR => FuseStep::Fuse {
            timer_read: true,
            pure: true,
        },
        _ => FuseStep::Fuse {
            timer_read: false,
            pure: true,
        },
    }
}

fn combine(a: FuseStep, b: FuseStep) -> FuseStep {
    match (a, b) {
        (
            FuseStep::Fuse {
                timer_read: t1,
                pure: p1,
            },
            FuseStep::Fuse {
                timer_read: t2,
                pure: p2,
            },
        ) => FuseStep::Fuse {
            timer_read: t1 || t2,
            pure: p1 && p2,
        },
        _ => FuseStep::End,
    }
}

/// The ATmega2560 fusion policy (see the module docs for the rationale).
pub(crate) fn classify(insn: &Insn) -> FuseStep {
    if structural_end(insn) {
        return FuseStep::End;
    }
    match *insn {
        // Unknown store target: could be SREG or the timer block.
        Insn::St { .. } | Insn::Std { .. } => FuseStep::End,
        // `sei` arms the irq_delay window, exactly like an SREG store.
        Insn::Bset { s } if s == sreg::I => FuseStep::End,
        Insn::Sts { k, .. } => write_policy(k),
        Insn::Out { a, .. } => write_policy(io::to_data_address(a)),
        Insn::Sbi { a, b: _ } | Insn::Cbi { a, b: _ } => {
            let addr = io::to_data_address(a);
            combine(read_policy(addr), write_policy(addr))
        }
        Insn::Lds { k, .. } => read_policy(k),
        Insn::In { a, .. } => read_policy(io::to_data_address(a)),
        // Indirect loads: target unknown, may observe the timer (but reads
        // cannot end delivery or fault, so they fuse; the micro-op carries
        // a sync offset for reads that land on the timer).
        Insn::Ld { .. } | Insn::Ldd { .. } => FuseStep::Fuse {
            timer_read: true,
            pure: true,
        },
        // Stack traffic is pure modulo the stack staying in bounds; the
        // compiler records the block's SP excursion and dispatch proves it
        // with one range check (see the module docs).
        Insn::Push { .. } | Insn::Pop { .. } => FuseStep::Fuse {
            timer_read: false,
            pure: true,
        },
        // `wdr` pets the watchdog with the *current* cycle count — the
        // micro-op reconstructs it from its in-block offset.
        Insn::Wdr => FuseStep::Fuse {
            timer_read: false,
            pure: true,
        },
        _ => FuseStep::Fuse {
            timer_read: false,
            pure: true,
        },
    }
}

/// Micro-operation opcodes for compiled pure blocks.
///
/// `*Nf` variants are the flag-liveness rewrites: same register dataflow,
/// no SREG computation. `Lds`/`Sts` cover `in`/`out` too (ports are
/// rewritten to data addresses at compile time); `Lpm`/`Elpm` cover their
/// `r0`-implicit forms (the destination is pre-resolved).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mop {
    /// Compile-time placeholder; never emitted into a stream.
    Nop,
    // ---- ALU, flags live ----
    Add,
    Adc,
    Sub,
    Sbc,
    And,
    Or,
    Eor,
    Cp,
    Cpc,
    Cpi,
    Subi,
    Sbci,
    Andi,
    Ori,
    Com,
    Neg,
    Inc,
    Dec,
    Asr,
    Lsr,
    Ror,
    Mul,
    Muls,
    Mulsu,
    Fmul,
    Fmuls,
    Fmulsu,
    Adiw,
    Sbiw,
    // ---- ALU, flags dead ----
    AddNf,
    AdcNf,
    SubNf,
    SbcNf,
    AndNf,
    OrNf,
    EorNf,
    SubiNf,
    SbciNf,
    AndiNf,
    OriNf,
    ComNf,
    NegNf,
    IncNf,
    DecNf,
    AsrNf,
    LsrNf,
    RorNf,
    AdiwNf,
    SbiwNf,
    // ---- moves, bits, memory ----
    Mov,
    Movw,
    Ldi,
    Swap,
    BsetM,
    BclrM,
    Bst,
    Bld,
    Lds,
    Sts,
    SbiM,
    CbiM,
    Push,
    Pop,
    Lpm,
    LpmInc,
    Elpm,
    ElpmInc,
    // ---- cycle-offset carriers (operand `b` is an in-block offset) ----
    /// Direct load of a cycle-dependent register (timer block, ADC
    /// result/status): sync the peripherals to the offset first.
    LdsT,
    /// Indirect load through a pointer pair (`k` = base register).
    LdP,
    /// Indirect load, post-increment.
    LdPInc,
    /// Indirect load, pre-decrement.
    LdPDec,
    /// Displacement load (`k` = base register | displacement << 8).
    LddQ,
    /// Watchdog pet at the exact mid-block cycle.
    WdrT,
    /// Heartbeat (PORTB) store observed at the exact mid-block cycle.
    StsHb,
    /// Heartbeat (PORTB) bit set, cycle-exact.
    SbiHb,
    /// Heartbeat (PORTB) bit clear, cycle-exact.
    CbiHb,
}

/// One compiled micro-operation: opcode plus pre-resolved operands.
/// `a`/`b` are raw register numbers, immediates or SREG masks depending on
/// the opcode; `k` is a data-space address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct MicroOp {
    pub op: Mop,
    pub a: u8,
    pub b: u8,
    pub k: u16,
}

/// A translated instruction with the metadata the liveness pass needs.
struct PureOp {
    mop: MicroOp,
    /// SREG bits this op reads.
    reads: u8,
    /// SREG bits this op (re)computes.
    writes: u8,
    /// Flag-dead rewrite, or [`Mop::Nop`] if none exists.
    nf: Mop,
    /// Flags are the op's *only* effect: delete it outright when dead.
    flag_only: bool,
    /// Stack-pointer delta (-1 push, +1 pop).
    sp: i8,
}

impl PureOp {
    fn new(op: Mop, a: u8, b: u8, k: u16) -> Self {
        PureOp {
            mop: MicroOp { op, a, b, k },
            reads: 0,
            writes: 0,
            nf: Mop::Nop,
            flag_only: false,
            sp: 0,
        }
    }
    fn flags(mut self, reads: u8, writes: u8) -> Self {
        self.reads = reads;
        self.writes = writes;
        self
    }
    fn nf(mut self, nf: Mop) -> Self {
        self.nf = nf;
        self
    }
    fn flag_only(mut self) -> Self {
        self.flag_only = true;
        self
    }
    fn stack(mut self, delta: i8) -> Self {
        self.sp = delta;
        self
    }
}

/// Direct load, routed through the timer-sync micro-op when the address
/// lands on a register whose value depends on elapsed cycles.
fn load_mop(d: Reg, k: u16) -> PureOp {
    let op = if matches!(
        k,
        TCNT0_ADDR | TIFR0_ADDR | ADCL_ADDR | ADCH_ADDR | ADCSRA_ADDR
    ) {
        Mop::LdsT
    } else {
        Mop::Lds
    };
    PureOp::new(op, d.num(), 0, k).flags(if k == SREG_DATA { 0xff } else { 0 }, 0)
}

/// Direct store, routed through the cycle-exact heartbeat micro-op for
/// PORTB.
fn store_mop(r: Reg, k: u16) -> PureOp {
    let op = if k == PORTB_ADDR {
        Mop::StsHb
    } else {
        Mop::Sts
    };
    PureOp::new(op, r.num(), 0, k)
}

/// Lower one policy-pure instruction to a micro-op. `None` demotes the
/// whole block to the careful per-instruction path — translation is the
/// authority on what the micro interpreter can run.
fn translate(insn: &Insn) -> Option<PureOp> {
    use Mop as M;
    const ARITH: u8 = alu::C | alu::Z | alu::N | alu::V | alu::S | alu::H;
    const LOGIC: u8 = alu::Z | alu::N | alu::V | alu::S;
    const SHIFT: u8 = alu::C | alu::Z | alu::N | alu::V | alu::S;
    const WORD: u8 = SHIFT;
    const MULF: u8 = alu::C | alu::Z;
    const STICKY: u8 = alu::C | alu::Z;
    let two = |op, d: Reg, r: Reg| PureOp::new(op, d.num(), r.num(), 0);
    let one = |op, d: Reg| PureOp::new(op, d.num(), 0, 0);
    let imm = |op, d: Reg, k: u8| PureOp::new(op, d.num(), k, 0);
    Some(match *insn {
        Insn::Nop => PureOp::new(M::Nop, 0, 0, 0),

        // ---- ALU, two-register ----
        Insn::Add { d, r } => two(M::Add, d, r).flags(0, ARITH).nf(M::AddNf),
        Insn::Adc { d, r } => two(M::Adc, d, r).flags(alu::C, ARITH).nf(M::AdcNf),
        Insn::Sub { d, r } => two(M::Sub, d, r).flags(0, ARITH).nf(M::SubNf),
        Insn::Sbc { d, r } => two(M::Sbc, d, r).flags(STICKY, ARITH).nf(M::SbcNf),
        Insn::And { d, r } => two(M::And, d, r).flags(0, LOGIC).nf(M::AndNf),
        Insn::Or { d, r } => two(M::Or, d, r).flags(0, LOGIC).nf(M::OrNf),
        Insn::Eor { d, r } => two(M::Eor, d, r).flags(0, LOGIC).nf(M::EorNf),
        Insn::Cp { d, r } => two(M::Cp, d, r).flags(0, ARITH).flag_only(),
        Insn::Cpc { d, r } => two(M::Cpc, d, r).flags(STICKY, ARITH).flag_only(),
        Insn::Mov { d, r } => two(M::Mov, d, r),
        Insn::Movw { d, r } => two(M::Movw, d, r),

        // ---- immediates ----
        Insn::Ldi { d, k } => imm(M::Ldi, d, k),
        Insn::Cpi { d, k } => imm(M::Cpi, d, k).flags(0, ARITH).flag_only(),
        Insn::Subi { d, k } => imm(M::Subi, d, k).flags(0, ARITH).nf(M::SubiNf),
        Insn::Sbci { d, k } => imm(M::Sbci, d, k).flags(STICKY, ARITH).nf(M::SbciNf),
        Insn::Ori { d, k } => imm(M::Ori, d, k).flags(0, LOGIC).nf(M::OriNf),
        Insn::Andi { d, k } => imm(M::Andi, d, k).flags(0, LOGIC).nf(M::AndiNf),

        // ---- single register ----
        Insn::Com { d } => one(M::Com, d).flags(0, SHIFT).nf(M::ComNf),
        Insn::Neg { d } => one(M::Neg, d).flags(0, ARITH).nf(M::NegNf),
        Insn::Swap { d } => one(M::Swap, d),
        Insn::Inc { d } => one(M::Inc, d).flags(0, LOGIC).nf(M::IncNf),
        Insn::Dec { d } => one(M::Dec, d).flags(0, LOGIC).nf(M::DecNf),
        Insn::Asr { d } => one(M::Asr, d).flags(0, SHIFT).nf(M::AsrNf),
        Insn::Lsr { d } => one(M::Lsr, d).flags(0, SHIFT).nf(M::LsrNf),
        Insn::Ror { d } => one(M::Ror, d).flags(alu::C, SHIFT).nf(M::RorNf),

        // ---- multiplies (flag recompute is cheap; no NF forms) ----
        Insn::Mul { d, r } => two(M::Mul, d, r).flags(0, MULF),
        Insn::Muls { d, r } => two(M::Muls, d, r).flags(0, MULF),
        Insn::Mulsu { d, r } => two(M::Mulsu, d, r).flags(0, MULF),
        Insn::Fmul { d, r } => two(M::Fmul, d, r).flags(0, MULF),
        Insn::Fmuls { d, r } => two(M::Fmuls, d, r).flags(0, MULF),
        Insn::Fmulsu { d, r } => two(M::Fmulsu, d, r).flags(0, MULF),

        // ---- word immediate ----
        Insn::Adiw { d, k } => imm(M::Adiw, d, k).flags(0, WORD).nf(M::AdiwNf),
        Insn::Sbiw { d, k } => imm(M::Sbiw, d, k).flags(0, WORD).nf(M::SbiwNf),

        // ---- memory (in/out pre-resolved to data addresses) ----
        Insn::Lds { d, k } => load_mop(d, k),
        Insn::Sts { k, r } => store_mop(r, k),
        Insn::In { d, a } => load_mop(d, io::to_data_address(a)),
        Insn::Out { a, r } => store_mop(r, io::to_data_address(a)),
        Insn::Sbi { a, b } => {
            let k = io::to_data_address(a);
            if k == PORTB_ADDR {
                PureOp::new(M::SbiHb, 1 << b, 0, k)
            } else {
                PureOp::new(M::SbiM, 0, 1 << b, k)
            }
        }
        Insn::Cbi { a, b } => {
            let k = io::to_data_address(a);
            if k == PORTB_ADDR {
                PureOp::new(M::CbiHb, !(1u8 << b), 0, k)
            } else {
                PureOp::new(M::CbiM, 0, 1 << b, k)
            }
        }
        // Dynamic-address reads (and pop, whose address is SP-relative) can
        // alias SREG in data space, so they pin every preceding flag write
        // live. Dynamic *writes* to SREG need no modelling: micro-ops write
        // flags through to `data` in program order.
        Insn::Ld { d, ptr } => {
            let op = match ptr {
                PtrReg::X => M::LdP,
                PtrReg::XPostInc | PtrReg::YPostInc | PtrReg::ZPostInc => M::LdPInc,
                PtrReg::XPreDec | PtrReg::YPreDec | PtrReg::ZPreDec => M::LdPDec,
            };
            PureOp::new(op, d.num(), 0, u16::from(ptr.base().num())).flags(0xff, 0)
        }
        Insn::Ldd { d, idx, q } => PureOp::new(
            M::LddQ,
            d.num(),
            0,
            u16::from(idx.base().num()) | (u16::from(q) << 8),
        )
        .flags(0xff, 0),
        Insn::Wdr => PureOp::new(M::WdrT, 0, 0, 0),
        Insn::Push { r } => one(M::Push, r).stack(-1),
        Insn::Pop { d } => one(M::Pop, d).stack(1).flags(0xff, 0),
        Insn::Lpm { d, post_inc } => one(if post_inc { M::LpmInc } else { M::Lpm }, d),
        Insn::Lpm0 => PureOp::new(M::Lpm, 0, 0, 0),
        Insn::Elpm { d, post_inc } => one(if post_inc { M::ElpmInc } else { M::Elpm }, d),
        Insn::Elpm0 => PureOp::new(M::Elpm, 0, 0, 0),

        // ---- SREG bit ops ----
        Insn::Bset { s } => PureOp::new(M::BsetM, 1 << s, 0, 0)
            .flags(0, 1 << s)
            .flag_only(),
        Insn::Bclr { s } => PureOp::new(M::BclrM, 1 << s, 0, 0)
            .flags(0, 1 << s)
            .flag_only(),
        Insn::Bst { d, b } => PureOp::new(M::Bst, d.num(), 1 << b, 0)
            .flags(0, alu::T)
            .flag_only(),
        Insn::Bld { d, b } => PureOp::new(M::Bld, d.num(), 1 << b, 0).flags(alu::T, 0),

        _ => return None,
    })
}

/// Compile a policy-pure block to a micro-op stream: translate every
/// instruction, run backward flag liveness, and record the stack-pointer
/// excursion. Returns `None` (demote to careful) when any instruction
/// fails to translate, or when a stack op follows an SP write — the
/// entry-SP margin proof would not cover it.
fn compile(
    icache: &[Predecoded],
    start: usize,
    insns: u16,
) -> Option<(Vec<MicroOp>, bool, i8, i8)> {
    let mut items: Vec<PureOp> = Vec::with_capacity(usize::from(insns));
    let (mut delta, mut lo, mut hi): (i32, i32, i32) = (0, 0, 0);
    let mut has_stack = false;
    let mut sp_written = false;
    let mut cyc: u32 = 0;
    let mut w = start;
    for _ in 0..insns {
        let e = &icache[w];
        w += usize::from(e.width);
        let before = cyc;
        cyc += u32::from(e.cycles);
        let mut t = translate(&e.insn)?;
        // Cycle-offset carriers: loads sync the timer to the point *before*
        // themselves (the stepping loop advances after exec); cycle
        // observers see the count *through* themselves (the stepping loop
        // charges an instruction's cycles before exec). A block is ≤ 64
        // instructions of ≤ 3 cycles, so offsets fit u8.
        match t.mop.op {
            Mop::LdsT | Mop::LdP | Mop::LdPInc | Mop::LdPDec | Mop::LddQ => t.mop.b = before as u8,
            Mop::WdrT | Mop::StsHb | Mop::SbiHb | Mop::CbiHb => t.mop.b = cyc as u8,
            _ => {}
        }
        match t.sp {
            // Push accesses data[sp + delta], then decrements.
            -1 if !sp_written => {
                has_stack = true;
                lo = lo.min(delta);
                hi = hi.max(delta);
                delta -= 1;
            }
            // Pop increments first, then accesses data[sp + delta + 1].
            1 if !sp_written => {
                has_stack = true;
                lo = lo.min(delta + 1);
                hi = hi.max(delta + 1);
                delta += 1;
            }
            0 => {}
            _ => return None,
        }
        if t.mop.op == Mop::Sts && (t.mop.k == SPL_DATA || t.mop.k == SPH_DATA) {
            sp_written = true;
        }
        items.push(t);
    }
    // Backward flag liveness. Live-out is all bits: the terminator after
    // the block (branch, ret, ...) may read any flag.
    let mut dead = vec![false; items.len()];
    let mut live = 0xffu8;
    for i in (0..items.len()).rev() {
        let t = &items[i];
        dead[i] = t.writes != 0 && t.writes & live == 0;
        live = (live & !t.writes) | t.reads;
    }
    let mut ops = Vec::with_capacity(items.len());
    for (i, t) in items.iter().enumerate() {
        if t.mop.op == Mop::Nop {
            continue;
        }
        if dead[i] {
            if t.flag_only {
                continue;
            }
            if t.nf != Mop::Nop {
                let mut m = t.mop;
                m.op = t.nf;
                ops.push(m);
                continue;
            }
        }
        ops.push(t.mop);
    }
    // Excursion bounds fit i8: a block holds at most 64 stack ops. A
    // lone push has excursion [0, 0] — `has_stack` (not a nonzero bound)
    // is what obliges the dispatch margin check.
    Some((ops, has_stack, lo as i8, hi as i8))
}

/// Index sentinel: the word has not been scanned yet.
const UNDISCOVERED: u32 = u32::MAX;
/// Index sentinel: scanned, but shorter than two instructions — not worth a
/// fused record; the per-instruction path handles it.
const TINY: u32 = u32::MAX - 1;

/// One fused superinstruction: a block's folded totals plus, for pure
/// blocks, the compiled micro-op stream (a range of [`BlockCache::mops`]).
/// Careful (impure) dispatch walks the block's instructions straight out of
/// the predecode table — overlapping blocks (every skip- or branch-landing
/// inside a run gets its own suffix record) then share the same cache lines
/// instead of each holding a copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FusedBlock {
    /// Start word address (the only entry point the cache indexes).
    pub start: u32,
    /// Word span.
    pub words: u16,
    /// Instruction count.
    pub insns: u16,
    /// Folded base-cycle total.
    pub cycles: u32,
    /// Offset of the compiled stream in [`BlockCache::mops`] (pure only).
    pub mops: u32,
    /// Compiled stream length (≤ `insns`: dead ops are deleted).
    pub mop_len: u16,
    /// Contains a load that may observe Timer0.
    pub timer_reads: bool,
    /// Compiled to a micro-op stream (see the module docs).
    pub pure: bool,
    /// Contains stack ops; dispatch must prove `sp_lo`/`sp_hi` in bounds.
    pub stack: bool,
    /// Lowest SP-relative offset any stack op accesses.
    pub sp_lo: i8,
    /// Highest SP-relative offset any stack op accesses.
    pub sp_hi: i8,
}

/// Lifetime activity counters of a [`BlockCache`] (see
/// [`Machine::block_stats`]).
///
/// [`Machine::block_stats`]: crate::Machine::block_stats
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockStats {
    /// Fused blocks dispatched (one count per block, not per instruction).
    pub hits: u64,
    /// Fused blocks dropped because a flash write overlapped them.
    pub invalidations: u64,
    /// Live fused blocks currently in the cache.
    pub blocks: u64,
}

/// Map from block-start word address to fused record, built lazily by the
/// fast run loop and patched per flash write. Like the predecode cache it
/// shadows, it is pure memoization: host-only, never snapshotted, rebuilt
/// on demand after `restore_state`.
#[derive(Debug, Clone, Default)]
pub(crate) struct BlockCache {
    /// Per flash word: [`UNDISCOVERED`], [`TINY`], or an index into
    /// `blocks`. Empty means the cache is not built.
    index: Vec<u32>,
    blocks: Vec<FusedBlock>,
    /// Arena of compiled micro-op streams, indexed by
    /// [`FusedBlock::mops`]`..+`[`FusedBlock::mop_len`].
    pub mops: Vec<MicroOp>,
    /// Non-tombstoned entries of `blocks`.
    live: usize,
    /// Fused blocks dispatched.
    pub hits: u64,
    /// Fused blocks invalidated by flash writes.
    pub invalidations: u64,
}

impl BlockCache {
    /// Make the index cover `words` flash words, resetting it if the flash
    /// geometry changed or the cache was dropped.
    pub fn ensure(&mut self, words: usize) {
        if self.index.len() != words {
            self.index.clear();
            self.index.resize(words, UNDISCOVERED);
            self.blocks.clear();
            self.mops.clear();
            self.live = 0;
        }
    }

    /// Number of live fused blocks.
    pub fn live(&self) -> usize {
        self.live
    }

    /// The fused block starting at word `pc`, discovering it on a miss.
    /// `None` when `pc` is out of range or the block is too small to fuse.
    pub fn lookup(&mut self, icache: &[Predecoded], pc: u32) -> Option<FusedBlock> {
        let slot = *self.index.get(pc as usize)?;
        match slot {
            TINY => None,
            UNDISCOVERED => self.discover(icache, pc),
            i => Some(self.blocks[i as usize]),
        }
    }

    fn discover(&mut self, icache: &[Predecoded], pc: u32) -> Option<FusedBlock> {
        let b = scan_block(icache, pc as usize, classify);
        if b.insns < 1 {
            // A bare terminator: dispatching it as a block would just be
            // stepping with lookup overhead. Single-instruction bodies stay
            // worthwhile because the terminator-tail step rides along.
            self.index[pc as usize] = TINY;
            return None;
        }
        let mut fused = FusedBlock {
            start: pc,
            words: b.words,
            insns: b.insns,
            cycles: b.cycles,
            mops: 0,
            mop_len: 0,
            timer_reads: b.timer_reads,
            pure: false,
            stack: false,
            sp_lo: 0,
            sp_hi: 0,
        };
        if b.pure {
            // Translation is the authority on purity: if any instruction
            // resists lowering, the block demotes to the careful path.
            if let Some((ops, has_stack, lo, hi)) = compile(icache, pc as usize, b.insns) {
                fused.pure = true;
                fused.mops = self.mops.len() as u32;
                fused.mop_len = ops.len() as u16;
                fused.stack = has_stack;
                fused.sp_lo = lo;
                fused.sp_hi = hi;
                self.mops.extend_from_slice(&ops);
            }
        }
        let id = self.blocks.len() as u32;
        self.blocks.push(fused);
        self.live += 1;
        self.index[pc as usize] = id;
        Some(fused)
    }

    /// Invalidate every block overlapping the flash write of `len` bytes at
    /// byte address `addr`. Mirrors `predecode_patch`'s range semantics: the
    /// patched word range is widened one word left (a changed word may be
    /// the second word of its predecessor), and block starts are scanned up
    /// to [`MAX_BLOCK_WORDS`] − 1 words further left, the farthest a block
    /// can begin and still reach the patch.
    pub fn invalidate_range(&mut self, addr: usize, len: usize) {
        if self.index.is_empty() || len == 0 {
            return;
        }
        let plo = (addr / 2).saturating_sub(1);
        let phi = ((addr + len - 1) / 2).min(self.index.len() - 1);
        let scan_lo = plo.saturating_sub(usize::from(MAX_BLOCK_WORDS) - 1);
        for s in scan_lo..=phi {
            match self.index[s] {
                UNDISCOVERED => {}
                // A tiny verdict depends on the words following `s` too
                // (the first terminator may have moved), so any scan-range
                // hit is conservatively rescanned.
                TINY => {
                    self.index[s] = UNDISCOVERED;
                }
                i => {
                    let b = &self.blocks[i as usize];
                    if s + usize::from(b.words) > plo {
                        self.index[s] = UNDISCOVERED;
                        self.live -= 1;
                        self.invalidations += 1;
                    }
                }
            }
        }
        // Tombstoned records (and their dead micro-op ranges) leak until
        // enough accumulate; then drop everything and rebuild lazily.
        if self.blocks.len() >= 64 && self.live * 2 < self.blocks.len() {
            self.drop_cache();
        }
    }

    /// Drop every block (flash erased, state restored, fusion toggled). The
    /// lifetime counters survive; `erased` says whether the drop should be
    /// charged to `invalidations` (a flash mutation) or not (a host-side
    /// reconfiguration).
    pub fn clear(&mut self, erased: bool) {
        if erased {
            self.invalidations += self.live as u64;
        }
        self.drop_cache();
    }

    fn drop_cache(&mut self) {
        self.index.clear();
        self.blocks.clear();
        self.mops.clear();
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avr_core::decode::predecode_image;
    use avr_core::encode::encode;
    use avr_core::Reg;

    fn table(insns: &[Insn]) -> Vec<Predecoded> {
        let bytes: Vec<u8> = insns
            .iter()
            .flat_map(|i| encode(i).unwrap())
            .flat_map(|w| w.to_le_bytes())
            .collect();
        predecode_image(&bytes)
    }

    #[test]
    fn policy_ends_on_irq_and_timer_hazards() {
        // SREG writes (direct, out, sei) and timer-block writes end blocks.
        assert_eq!(
            classify(&Insn::Sts {
                k: SREG_DATA,
                r: Reg::R0
            }),
            FuseStep::End
        );
        assert_eq!(
            classify(&Insn::Out {
                a: io::SREG,
                r: Reg::R0
            }),
            FuseStep::End
        );
        assert_eq!(classify(&Insn::Bset { s: sreg::I }), FuseStep::End);
        for k in [TIMSK0_ADDR, TCCR0B_ADDR, TCNT0_ADDR, TIFR0_ADDR] {
            assert_eq!(classify(&Insn::Sts { k, r: Reg::R0 }), FuseStep::End);
        }
        // TIFR0 is within sbi/cbi range (io 0x15): write-one-to-clear.
        assert_eq!(classify(&Insn::Sbi { a: 0x15, b: 0 }), FuseStep::End);
        assert_eq!(classify(&Insn::Cbi { a: 0x15, b: 0 }), FuseStep::End);
        // ADC-block writes start conversions or change delivery state.
        for k in [ADCL_ADDR, ADCH_ADDR, ADCSRA_ADDR, ADMUX_ADDR] {
            assert_eq!(classify(&Insn::Sts { k, r: Reg::R0 }), FuseStep::End);
        }
        // Indirect stores could hit any of the above.
        assert_eq!(
            classify(&Insn::St {
                ptr: avr_core::PtrReg::X,
                r: Reg::R0
            }),
            FuseStep::End
        );
    }

    #[test]
    fn policy_classifies_purity_and_timer_reads() {
        // cli is safe (it can only stop delivery, never start it mid-block).
        assert!(matches!(
            classify(&Insn::Bclr { s: sreg::I }),
            FuseStep::Fuse { pure: true, .. }
        ));
        // Timer reads compile to sync-offset micro-ops: pure, but flagged
        // so the careful fallback still advances per instruction.
        assert_eq!(
            classify(&Insn::In {
                d: Reg::R0,
                a: 0x26
            }),
            FuseStep::Fuse {
                timer_read: true,
                pure: true
            }
        );
        assert_eq!(
            classify(&Insn::Lds {
                d: Reg::R0,
                k: TCNT0_ADDR
            }),
            FuseStep::Fuse {
                timer_read: true,
                pure: true
            }
        );
        // ADC result/status reads are cycle-dependent the same way.
        for k in [ADCL_ADDR, ADCH_ADDR, ADCSRA_ADDR] {
            assert_eq!(
                classify(&Insn::Lds { d: Reg::R0, k }),
                FuseStep::Fuse {
                    timer_read: true,
                    pure: true
                }
            );
        }
        assert!(matches!(
            classify(&Insn::Ld {
                d: Reg::R0,
                ptr: avr_core::PtrReg::X
            }),
            FuseStep::Fuse {
                timer_read: true,
                pure: true
            }
        ));
        // Heartbeat stores carry their cycle offset in the micro-op: pure.
        assert_eq!(
            classify(&Insn::Sts {
                k: PORTB_ADDR,
                r: Reg::R0
            }),
            FuseStep::Fuse {
                timer_read: false,
                pure: true
            }
        );
        // PORTB as io (0x05) — distinct from TCCR0B's data address 0x25.
        assert_eq!(
            classify(&Insn::Out {
                a: 0x05,
                r: Reg::R0
            }),
            FuseStep::Fuse {
                timer_read: false,
                pure: true
            }
        );
        // Plain ALU / immediate / SRAM traffic is pure — and so are stack
        // ops, whose bounds dispatch proves with the SP-margin check.
        for i in [
            Insn::Ldi { d: Reg::R16, k: 1 },
            Insn::Add {
                d: Reg::R0,
                r: Reg::R1,
            },
            Insn::Lds {
                d: Reg::R0,
                k: 0x300,
            },
            Insn::Sts {
                k: 0x300,
                r: Reg::R0,
            },
            Insn::Lpm0,
            Insn::Nop,
            Insn::Push { r: Reg::R0 },
            Insn::Pop { d: Reg::R0 },
        ] {
            assert_eq!(
                classify(&i),
                FuseStep::Fuse {
                    timer_read: false,
                    pure: true
                },
                "{i:?}"
            );
        }
    }

    #[test]
    fn lookup_discovers_and_memoizes() {
        let t = table(&[
            Insn::Ldi { d: Reg::R16, k: 1 },
            Insn::Ldi { d: Reg::R17, k: 2 },
            Insn::Add {
                d: Reg::R16,
                r: Reg::R17,
            },
            Insn::Ret,
        ]);
        let mut c = BlockCache::default();
        c.ensure(t.len());
        let b = c.lookup(&t, 0).unwrap();
        assert_eq!((b.insns, b.words, b.cycles), (3, 3, 3));
        assert!(b.pure);
        assert_eq!(b.mop_len, 3, "three live micro-ops");
        assert_eq!(c.live(), 1);
        // Memoized: same record back.
        assert_eq!(c.lookup(&t, 0), Some(b));
        // Entering mid-block creates an overlapping (shorter) block.
        let b2 = c.lookup(&t, 1).unwrap();
        assert_eq!(b2.insns, 2);
        assert_eq!(c.live(), 2);
        // A one-instruction tail still fuses (its terminator tail-steps in
        // the same dispatch); a terminator start is empty and stays tiny.
        let b3 = c.lookup(&t, 2).unwrap();
        assert_eq!(b3.insns, 1);
        assert_eq!(c.live(), 3);
        assert_eq!(c.lookup(&t, 3), None);
        assert_eq!(c.lookup(&t, 100), None, "out of range");
    }

    #[test]
    fn invalidate_drops_overlapping_blocks_only() {
        let mut insns = vec![
            Insn::Ldi { d: Reg::R16, k: 1 },
            Insn::Ldi { d: Reg::R17, k: 2 },
            Insn::Ret,
        ];
        insns.extend([
            Insn::Ldi { d: Reg::R18, k: 3 },
            Insn::Ldi { d: Reg::R19, k: 4 },
            Insn::Ret,
        ]);
        let t = table(&insns);
        let mut c = BlockCache::default();
        c.ensure(t.len());
        c.lookup(&t, 0).unwrap();
        c.lookup(&t, 3).unwrap();
        assert_eq!(c.live(), 2);
        // Patch word 4 (byte 8): only the second block overlaps.
        c.invalidate_range(8, 2);
        assert_eq!(c.live(), 1);
        assert_eq!(c.invalidations, 1);
        assert!(c.lookup(&t, 0).is_some(), "first block survives");
    }

    #[test]
    fn clear_charges_only_flash_mutations() {
        let t = table(&[Insn::Ldi { d: Reg::R16, k: 1 }, Insn::Nop, Insn::Ret]);
        let mut c = BlockCache::default();
        c.ensure(t.len());
        c.lookup(&t, 0).unwrap();
        c.clear(false);
        assert_eq!(c.invalidations, 0, "host reconfiguration is free");
        assert!(c.index.is_empty(), "clear drops the table");
        c.ensure(t.len());
        c.lookup(&t, 0).unwrap();
        let hits_before = c.hits;
        c.clear(true);
        assert_eq!(c.invalidations, 1, "erase charges the live count");
        assert_eq!(c.hits, hits_before, "hits survive clears");
    }

    #[test]
    fn compile_deletes_dead_flag_ops_and_rewrites_nf() {
        // cp's flags are fully recomputed by subi before anything reads
        // them; subi's own flags die into the second subi. Only the last
        // op's flags survive to the terminator.
        let t = table(&[
            Insn::Cp {
                d: Reg::R0,
                r: Reg::R1,
            },
            Insn::Subi { d: Reg::R16, k: 1 },
            Insn::Subi { d: Reg::R17, k: 2 },
            Insn::Ret,
        ]);
        let mut c = BlockCache::default();
        c.ensure(t.len());
        let b = c.lookup(&t, 0).unwrap();
        assert!(b.pure);
        assert_eq!((b.insns, b.mop_len), (3, 2), "cp deleted outright");
        let ops = &c.mops[b.mops as usize..b.mops as usize + usize::from(b.mop_len)];
        assert_eq!(ops[0].op, Mop::SubiNf, "dead flags: flag-free rewrite");
        assert_eq!(ops[1].op, Mop::Subi, "live-out flags stay exact");
    }

    #[test]
    fn compile_keeps_flags_live_across_readers() {
        // adc reads C: the add before it must stay flagged.
        let t = table(&[
            Insn::Add {
                d: Reg::R0,
                r: Reg::R2,
            },
            Insn::Adc {
                d: Reg::R1,
                r: Reg::R3,
            },
            Insn::Ret,
        ]);
        let mut c = BlockCache::default();
        c.ensure(t.len());
        let b = c.lookup(&t, 0).unwrap();
        let ops = &c.mops[b.mops as usize..b.mops as usize + usize::from(b.mop_len)];
        assert_eq!(ops[0].op, Mop::Add);
        assert_eq!(ops[1].op, Mop::Adc);
    }

    #[test]
    fn compile_keeps_flags_live_across_dynamic_reads() {
        // An indirect load can alias SREG in data space (X = 0x5f reads the
        // flags as a plain byte), so `cp` must survive even though `sub`
        // recomputes every flag before the terminator.
        let t = table(&[
            Insn::Cp {
                d: Reg::R0,
                r: Reg::R1,
            },
            Insn::Ld {
                d: Reg::R2,
                ptr: avr_core::PtrReg::X,
            },
            Insn::Sub {
                d: Reg::R3,
                r: Reg::R4,
            },
            Insn::Ret,
        ]);
        let mut c = BlockCache::default();
        c.ensure(t.len());
        let b = c.lookup(&t, 0).unwrap();
        assert!(b.pure);
        assert_eq!(b.mop_len, 3, "cp is pinned live by the dynamic read");
        let ops = &c.mops[b.mops as usize..b.mops as usize + usize::from(b.mop_len)];
        assert_eq!(ops[0].op, Mop::Cp);
        assert_eq!(ops[1].op, Mop::LdP);
    }

    #[test]
    fn compile_records_stack_excursion() {
        let t = table(&[
            Insn::Push { r: Reg::R0 },
            Insn::Push { r: Reg::R1 },
            Insn::Pop { d: Reg::R2 },
            Insn::Ret,
        ]);
        let mut c = BlockCache::default();
        c.ensure(t.len());
        let b = c.lookup(&t, 0).unwrap();
        assert!(b.pure && b.stack);
        // Accesses at sp+0 (push), sp-1 (push), sp-1 (pop).
        assert_eq!((b.sp_lo, b.sp_hi), (-1, 0));
    }

    #[test]
    fn compile_demotes_stack_ops_after_sp_write() {
        // `out SPL, r28` retargets the stack; a later push would escape the
        // entry-SP margin proof, so the block must fall to the careful path.
        let t = table(&[
            Insn::Out {
                a: io::SPL,
                r: Reg::R28,
            },
            Insn::Push { r: Reg::R0 },
            Insn::Ret,
        ]);
        let mut c = BlockCache::default();
        c.ensure(t.len());
        let b = c.lookup(&t, 0).unwrap();
        assert!(!b.pure, "SP write before a stack op demotes the block");
    }

    #[test]
    fn translate_resolves_io_and_sreg_reads() {
        let t = translate(&Insn::In {
            d: Reg::R0,
            a: io::SREG,
        })
        .unwrap();
        assert_eq!((t.mop.op, t.mop.k), (Mop::Lds, SREG_DATA));
        assert_eq!(t.reads, 0xff, "reading SREG keeps every flag live");
        let t = translate(&Insn::Out {
            a: 0x12,
            r: Reg::R5,
        })
        .unwrap();
        assert_eq!((t.mop.op, t.mop.k), (Mop::Sts, io::to_data_address(0x12)));
    }
}
