//! The machine: CPU, Harvard memories, and memory-mapped peripherals.

use std::collections::HashSet;

use avr_core::decode::{predecode_at, predecode_image, predecode_patch};
use avr_core::device::{Device, ATMEGA2560};
use avr_core::{io, Insn, Predecoded, PtrReg, Reg};

use telemetry::{Telemetry, Value};

use crate::adc::{Adc, ADCL_ADDR, ADMUX_ADDR};
use crate::alu;
use crate::blockcache::{BlockCache, BlockStats, FusedBlock, MicroOp, Mop};
use crate::eeprom::{Eeprom, EEARH_ADDR, EECR_ADDR};
use crate::fault::{Fault, RunExit};
use crate::periph::{
    Heartbeat, PortB, Pwm, Uart, Watchdog, OCR0A_ADDR, OCR0B_ADDR, PORTB_ADDR, UCSR0A_ADDR,
    UDR0_ADDR,
};
use crate::profiler::{CycleProfile, Flow, PcProfile};
use crate::timer::{self, Timer0, TCCR0B_ADDR, TCNT0_ADDR, TIFR0_ADDR, TIMSK0_ADDR};

/// PORTB bit used as the heartbeat signal to the MAVR master processor.
pub const HEARTBEAT_BIT: u8 = 5;

/// Granularity of the dirty-page tracking used by delta snapshots.
pub const DIRTY_PAGE_SIZE: usize = 256;

const SPL_DATA: u16 = io::to_data_address(io::SPL);
const SPH_DATA: u16 = io::to_data_address(io::SPH);
const SREG_DATA: u16 = io::to_data_address(io::SREG);
const RAMPZ_DATA: u16 = io::to_data_address(io::RAMPZ);
const EIND_DATA: u16 = io::to_data_address(io::EIND);

/// Ring buffer of recently executed instructions, for post-mortem analysis
/// of crashed (attacked) machines.
#[derive(Debug, Clone)]
pub struct Trace {
    entries: Vec<(u32, u16)>, // (pc bytes, sp)
    head: usize,
    capacity: usize,
}

impl Trace {
    /// An empty ring holding up to `capacity` entries (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Trace {
            entries: Vec::with_capacity(capacity),
            head: 0,
            capacity: capacity.max(1),
        }
    }

    /// Append one `(pc_bytes, sp)` sample, evicting the oldest when full.
    pub fn record(&mut self, pc_bytes: u32, sp: u16) {
        if self.entries.len() < self.capacity {
            self.entries.push((pc_bytes, sp));
        } else {
            self.entries[self.head] = (pc_bytes, sp);
        }
        self.head = (self.head + 1) % self.capacity;
    }

    /// The recorded `(pc_bytes, sp)` pairs, oldest first.
    pub fn entries(&self) -> Vec<(u32, u16)> {
        if self.entries.len() < self.capacity {
            self.entries.clone()
        } else {
            let mut out = self.entries[self.head..].to_vec();
            out.extend_from_slice(&self.entries[..self.head]);
            out
        }
    }

    /// The most recently executed PC (bytes).
    pub fn last_pc(&self) -> Option<u32> {
        let idx = (self.head + self.capacity - 1) % self.capacity;
        self.entries
            .get(idx.min(self.entries.len().saturating_sub(1)))
            .map(|e| e.0)
    }
}

/// A simulated AVR microcontroller.
///
/// Program memory, the linear data space (registers + I/O + SRAM) and the
/// EEPROM are physically separate, exactly as on the part (Fig. 1 of the
/// paper): nothing in the data space is ever executed, and flash can only be
/// changed by the host (playing the role of the programmer/bootloader).
#[derive(Debug, Clone)]
pub struct Machine {
    device: Device,
    flash: Vec<u8>,
    data: Vec<u8>,
    /// The EEPROM and its register interface (persistent configuration;
    /// unaffected by MAVR reflashes).
    pub eeprom: Eeprom,
    pc: u32,
    cycles: u64,
    fault: Option<Fault>,
    breakpoints: HashSet<u32>,
    /// One-instruction interrupt suppression after SREG writes / reti, as
    /// on real silicon ("the instruction following SEI will be executed
    /// before any pending interrupts").
    irq_delay: bool,
    trace: Option<Trace>,
    /// USART0 — the telemetry link to the ground station.
    pub uart0: Uart,
    /// The heartbeat monitor fed by PORTB writes.
    pub heartbeat: Heartbeat,
    /// Watchdog timer (disabled unless enabled by the host).
    pub watchdog: Watchdog,
    /// Timer/Counter0 (overflow interrupt support).
    pub timer0: Timer0,
    /// The ADC — the firmware's window onto the host-side analog world.
    pub adc: Adc,
    /// PWM duty latches (`OCR0A`/`OCR0B`) — the firmware's motor outputs.
    pub pwm: Pwm,
    /// The PORTB output latch (heartbeat pin and friends).
    pub portb: PortB,
    /// Instructions retired since construction (not cleared by [`reset`]).
    ///
    /// [`reset`]: Machine::reset
    pub insns_retired: u64,
    /// Interrupts vectored since construction.
    pub interrupts_taken: u64,
    /// Flight-recorder handle; inert by default. Fault and watchdog events
    /// are emitted here from the cold failure path only, so the hot loop is
    /// unaffected.
    pub telemetry: Telemetry,
    /// Opt-in hot-PC histogram (see [`Machine::enable_profile`]).
    profile: Option<PcProfile>,
    /// Opt-in symbol-attributed cycle profiler (see
    /// [`Machine::enable_cycle_profile`]). Boxed: it is cold and large
    /// relative to the hot machine state.
    cycle_profile: Option<Box<CycleProfile>>,
    /// Predecoded instruction cache, one entry per flash word. Empty means
    /// "not built yet" — it is built lazily by the first fast [`run`] and
    /// patched in place on every flash mutation, so cached and uncached
    /// execution are bit-for-bit identical.
    ///
    /// [`run`]: Machine::run
    icache: Vec<Predecoded>,
    /// Whether the predecode cache (and the fast run loop that depends on
    /// it) is enabled. On by default; see [`Machine::set_predecode`].
    predecode: bool,
    /// Fused basic-block cache layered over the icache: superinstruction
    /// records with folded cycle totals, one event check per block. Like
    /// the icache it is pure memoization — lazily built, patched per flash
    /// write, never snapshotted.
    bcache: BlockCache,
    /// Whether block-fused dispatch is enabled (on by default; requires
    /// predecode). See [`Machine::set_block_fusion`].
    block_fusion: bool,
    /// Dirty bitmap over 256-byte data-space pages (bit n = page n). Pages
    /// 0 and 1 — registers, I/O, and the first SRAM bytes — are *always*
    /// reported dirty so the per-instruction register/SREG/SP writes need
    /// no bookkeeping; only SRAM-bound store paths mark.
    dirty_data: u64,
    /// Dirty bitmap over 256-byte flash pages, 64 pages per word.
    dirty_flash: Vec<u64>,
}

/// Snapshot of the machine's activity counters (see [`Machine::counters`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimCounters {
    /// Instructions retired.
    pub insns_retired: u64,
    /// CPU cycles elapsed.
    pub cycles: u64,
    /// Interrupts vectored.
    pub interrupts_taken: u64,
    /// Bytes the UART consumed from the receive queue.
    pub uart_rx_bytes: u64,
    /// Bytes the UART transmitted.
    pub uart_tx_bytes: u64,
    /// EEPROM write operations.
    pub eeprom_writes: u64,
}

impl Machine {
    /// Create a machine for the given device, flash erased to `0xff`.
    pub fn new(device: Device) -> Self {
        let mut m = Machine {
            device,
            flash: vec![0xff; device.flash_bytes as usize],
            data: vec![0; device.sram_start as usize + device.sram_bytes as usize],
            eeprom: Eeprom::new(device.eeprom_bytes as usize),
            pc: 0,
            cycles: 0,
            fault: None,
            breakpoints: HashSet::new(),
            irq_delay: false,
            trace: None,
            uart0: Uart::default(),
            heartbeat: Heartbeat::default(),
            watchdog: Watchdog::default(),
            timer0: Timer0::default(),
            adc: Adc::default(),
            pwm: Pwm::default(),
            portb: PortB::default(),
            insns_retired: 0,
            interrupts_taken: 0,
            telemetry: Telemetry::off(),
            profile: None,
            cycle_profile: None,
            icache: Vec::new(),
            predecode: true,
            bcache: BlockCache::default(),
            block_fusion: true,
            // A fresh machine is all-dirty: the first keyframe must capture
            // everything.
            dirty_data: !0,
            dirty_flash: vec![
                !0;
                (device.flash_bytes as usize)
                    .div_ceil(DIRTY_PAGE_SIZE)
                    .div_ceil(64)
            ],
        };
        m.set_sp(device.ramend());
        m
    }

    /// Create an ATmega2560 — the APM 2.5 application processor.
    pub fn new_atmega2560() -> Self {
        Machine::new(ATMEGA2560)
    }

    /// The device description.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Copy `bytes` into flash at byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the flash size.
    pub fn load_flash(&mut self, addr: u32, bytes: &[u8]) {
        let a = addr as usize;
        self.flash[a..a + bytes.len()].copy_from_slice(bytes);
        self.mark_flash_dirty(a, bytes.len());
        if !self.icache.is_empty() {
            predecode_patch(&mut self.icache, &self.flash, a, bytes.len());
        }
        self.bcache.invalidate_range(a, bytes.len());
    }

    /// Read back flash (the *debug/ISP* view — the MAVR readout-protection
    /// fuse is modelled one level up, in the board crate).
    pub fn flash(&self) -> &[u8] {
        &self.flash
    }

    /// Erase all of flash to `0xff`.
    pub fn erase_flash(&mut self) {
        self.flash.fill(0xff);
        self.dirty_flash.fill(!0);
        if !self.icache.is_empty() {
            // Every erased word decodes identically (0xffff is reserved),
            // so a single repeated entry refreshes the whole cache.
            self.icache.fill(predecode_at(&self.flash, 0));
        }
        self.bcache.clear(true);
    }

    /// Enable or disable the predecoded instruction cache (on by default).
    ///
    /// The cache is a pure memoization of the decoder: cached and uncached
    /// execution produce identical architectural traces (the differential
    /// tests assert this). Disabling it drops the cache and forces every
    /// fetch through the decoder, which also disables the fast run loop —
    /// useful as the reference side of a differential test.
    pub fn set_predecode(&mut self, on: bool) {
        self.predecode = on;
        if !on {
            self.icache = Vec::new();
            // Blocks are scanned out of the icache; without it they would
            // go stale unnoticed.
            self.bcache.clear(false);
        }
    }

    /// Enable or disable block-fused dispatch (on by default).
    ///
    /// Fusion is a second memoization layer on top of the predecode cache:
    /// straight-line runs become superinstructions with a folded cycle
    /// total and one event-horizon/interrupt check per block. Fused,
    /// predecoded-only (`set_block_fusion(false)`) and uncached
    /// (`set_predecode(false)`) execution produce identical architectural
    /// traces — the three-way differential tests assert it. Disabling drops
    /// the cache.
    pub fn set_block_fusion(&mut self, on: bool) {
        self.block_fusion = on;
        if !on {
            self.bcache.clear(false);
        }
    }

    /// Lifetime block-cache activity: fused dispatches, flash-write
    /// invalidations, and the current live block count.
    pub fn block_stats(&self) -> BlockStats {
        BlockStats {
            hits: self.bcache.hits,
            invalidations: self.bcache.invalidations,
            blocks: self.bcache.live() as u64,
        }
    }

    fn ensure_icache(&mut self) {
        if self.predecode && self.icache.is_empty() {
            self.icache = predecode_image(&self.flash);
        }
    }

    /// Reset the CPU: PC to the reset vector, SP to RAMEND, SREG cleared,
    /// fault cleared. SRAM contents are preserved, as on real silicon.
    pub fn reset(&mut self) {
        self.pc = 0;
        self.fault = None;
        self.data[..32].fill(0);
        self.write_data(SREG_DATA, 0);
        self.set_sp(self.device.ramend());
        self.watchdog = Watchdog::default();
        self.timer0 = Timer0::default();
        // A reset resets the peripheral register interfaces; the PORTB pin
        // latch survives like SRAM (and the heartbeat monitor's level with
        // it), and the ADC keeps its host-side analog inputs.
        self.adc.reset();
        self.pwm.reset();
    }

    // ---- register / flag accessors ----

    /// Read a general-purpose register.
    pub fn reg(&self, r: Reg) -> u8 {
        self.data[r.num() as usize]
    }

    /// Write a general-purpose register.
    pub fn set_reg(&mut self, r: Reg, v: u8) {
        self.data[r.num() as usize] = v;
    }

    /// Read a register pair as little-endian u16 (`low` must be the lower
    /// register of the pair).
    pub fn reg_pair(&self, low: Reg) -> u16 {
        u16::from_le_bytes([self.reg(low), self.data[low.num() as usize + 1]])
    }

    /// Write a register pair.
    pub fn set_reg_pair(&mut self, low: Reg, v: u16) {
        let [lo, hi] = v.to_le_bytes();
        self.data[low.num() as usize] = lo;
        self.data[low.num() as usize + 1] = hi;
    }

    /// Current stack pointer.
    pub fn sp(&self) -> u16 {
        u16::from_le_bytes([self.data[SPL_DATA as usize], self.data[SPH_DATA as usize]])
    }

    /// Set the stack pointer.
    pub fn set_sp(&mut self, sp: u16) {
        let [lo, hi] = sp.to_le_bytes();
        self.data[SPL_DATA as usize] = lo;
        self.data[SPH_DATA as usize] = hi;
    }

    /// Current SREG.
    pub fn sreg(&self) -> u8 {
        self.data[SREG_DATA as usize]
    }

    /// Set SREG.
    pub fn set_sreg(&mut self, v: u8) {
        self.data[SREG_DATA as usize] = v;
    }

    /// Current program counter, in words.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Current program counter, in bytes (as listings show it).
    pub fn pc_bytes(&self) -> u32 {
        self.pc * 2
    }

    /// Jump the PC to a byte address.
    pub fn set_pc_bytes(&mut self, addr: u32) {
        self.pc = addr / 2;
    }

    /// Total executed cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The sticky fault, if the machine has crashed.
    pub fn fault(&self) -> Option<Fault> {
        self.fault
    }

    /// Whether the one-instruction interrupt suppression window (after an
    /// SREG write or `reti`) is pending. Part of the architectural state a
    /// snapshot must carry: dropping it would let a restored machine take
    /// an interrupt one instruction early.
    pub fn irq_delay_pending(&self) -> bool {
        self.irq_delay
    }

    // ---- data space ----

    /// Read a data-space byte (with I/O side effects, e.g. reading `UDR0`
    /// consumes a received byte).
    pub fn read_data(&mut self, addr: u16) -> u8 {
        match addr {
            UCSR0A_ADDR => self.uart0.status(),
            UDR0_ADDR => self.uart0.read_data(),
            EECR_ADDR..=EEARH_ADDR => self.eeprom.read_reg(addr),
            TCNT0_ADDR => self.timer0.tcnt,
            TCCR0B_ADDR => self.timer0.tccr_b,
            TIMSK0_ADDR => self.timer0.timsk,
            TIFR0_ADDR => self.timer0.tifr,
            PORTB_ADDR => self.portb.read(),
            OCR0A_ADDR | OCR0B_ADDR => self.pwm.read(addr),
            ADCL_ADDR..=ADMUX_ADDR => self.adc.read(addr),
            _ => self.data.get(addr as usize).copied().unwrap_or(0),
        }
    }

    /// Inspect a data-space byte with **no** side effects (host/debugger
    /// view, used for the paper's stack dumps in Fig. 6).
    pub fn peek_data(&self, addr: u16) -> u8 {
        self.data.get(addr as usize).copied().unwrap_or(0)
    }

    /// Inspect a range of the data space without side effects.
    pub fn peek_range(&self, addr: u16, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| self.peek_data(addr.wrapping_add(i as u16)))
            .collect()
    }

    /// Write a data-space byte (with I/O side effects: PORTB writes feed the
    /// heartbeat monitor, `UDR0` writes transmit).
    pub fn write_data(&mut self, addr: u16, v: u8) {
        match addr {
            UDR0_ADDR => self.uart0.write_data(v),
            EECR_ADDR..=EEARH_ADDR => self.eeprom.write_reg(addr, v),
            TCNT0_ADDR => self.timer0.tcnt = v,
            TCCR0B_ADDR => self.timer0.tccr_b = v,
            TIMSK0_ADDR => self.timer0.timsk = v,
            // Writing 1 to a TIFR bit clears it, as on real hardware.
            TIFR0_ADDR => self.timer0.tifr &= !v,
            OCR0A_ADDR | OCR0B_ADDR => self.pwm.write(addr, v),
            ADCL_ADDR..=ADMUX_ADDR => self.adc.write(addr, v),
            PORTB_ADDR => {
                let v = self.portb.write(v);
                self.heartbeat.observe(v, HEARTBEAT_BIT, self.cycles);
                // Mirrored into the data array so host-side peeks (stack
                // dumps, snapshots of the raw data space) keep seeing it.
                self.data[addr as usize] = v;
            }
            _ => {
                if (addr as usize) < self.data.len() {
                    self.data[addr as usize] = v;
                    self.mark_data_dirty(addr);
                }
            }
        }
    }

    /// Host-side poke with no side effects.
    pub fn poke_data(&mut self, addr: u16, v: u8) {
        if addr == PORTB_ADDR {
            // Keep the pin latch coherent with its data-space mirror
            // (silently, without a heartbeat observation).
            self.portb.value = v;
        }
        if (addr as usize) < self.data.len() {
            self.data[addr as usize] = v;
            self.mark_data_dirty(addr);
        }
    }

    fn data_in_bounds(&self, addr: u16) -> bool {
        (addr as usize) < self.data.len()
    }

    // ---- dirty-page tracking (for delta snapshots) ----

    /// Mark the data page holding `addr` dirty. Pages 0–1 never need it
    /// (they are unconditionally dirty), but marking them is harmless.
    #[inline]
    fn mark_data_dirty(&mut self, addr: u16) {
        let page = addr as usize / DIRTY_PAGE_SIZE;
        if page < 64 {
            self.dirty_data |= 1 << page;
        }
    }

    /// Mark every flash page overlapping `[addr, addr + len)` dirty.
    fn mark_flash_dirty(&mut self, addr: usize, len: usize) {
        if len == 0 {
            return;
        }
        let first = addr / DIRTY_PAGE_SIZE;
        let last = (addr + len - 1) / DIRTY_PAGE_SIZE;
        for p in first..=last {
            self.dirty_flash[p / 64] |= 1 << (p % 64);
        }
    }

    /// Indices of data-space pages touched since [`clear_dirty`], oldest
    /// page first. The register/I/O pages (0 and 1) are always included:
    /// they change on virtually every instruction and tracking them would
    /// put bookkeeping on the hot path for nothing.
    ///
    /// [`clear_dirty`]: Machine::clear_dirty
    pub fn dirty_data_pages(&self) -> Vec<usize> {
        let pages = self.data.len().div_ceil(DIRTY_PAGE_SIZE);
        (0..pages)
            .filter(|&p| p < 2 || self.dirty_data & (1 << p) != 0)
            .collect()
    }

    /// Indices of flash pages touched since [`clear_dirty`].
    ///
    /// [`clear_dirty`]: Machine::clear_dirty
    pub fn dirty_flash_pages(&self) -> Vec<usize> {
        let pages = self.flash.len().div_ceil(DIRTY_PAGE_SIZE);
        (0..pages)
            .filter(|&p| self.dirty_flash[p / 64] & (1 << (p % 64)) != 0)
            .collect()
    }

    /// Reset the dirty tracking — done by the snapshot layer right after it
    /// captures a keyframe, so subsequent deltas cover exactly the pages
    /// touched since. Pages 0–1 of the data space stay permanently dirty
    /// (see [`dirty_data_pages`]); the EEPROM flag clears too.
    ///
    /// [`dirty_data_pages`]: Machine::dirty_data_pages
    pub fn clear_dirty(&mut self) {
        self.dirty_data = 0b11;
        self.dirty_flash.fill(0);
        self.eeprom.clear_dirty();
    }

    // ---- breakpoints ----

    /// Set a breakpoint at a byte address.
    pub fn add_breakpoint(&mut self, byte_addr: u32) {
        self.breakpoints.insert(byte_addr / 2);
    }

    /// Remove a breakpoint at a byte address.
    pub fn remove_breakpoint(&mut self, byte_addr: u32) {
        self.breakpoints.remove(&(byte_addr / 2));
    }

    // ---- stack ----

    fn push8(&mut self, v: u8) -> Result<(), Fault> {
        let sp = self.sp();
        if !self.data_in_bounds(sp) {
            return Err(Fault::StackOutOfBounds { sp });
        }
        self.data[sp as usize] = v;
        self.mark_data_dirty(sp);
        self.set_sp(sp.wrapping_sub(1));
        Ok(())
    }

    fn pop8(&mut self) -> Result<u8, Fault> {
        let sp = self.sp().wrapping_add(1);
        if !self.data_in_bounds(sp) {
            return Err(Fault::StackOutOfBounds { sp });
        }
        self.set_sp(sp);
        Ok(self.data[sp as usize])
    }

    fn push_pc(&mut self, pc: u32) -> Result<(), Fault> {
        // Low byte first, so the return address sits big-endian in memory.
        self.push8((pc & 0xff) as u8)?;
        self.push8(((pc >> 8) & 0xff) as u8)?;
        if self.device.pc_bytes == 3 {
            self.push8(((pc >> 16) & 0xff) as u8)?;
        }
        Ok(())
    }

    fn pop_pc(&mut self) -> Result<u32, Fault> {
        let mut pc = 0u32;
        if self.device.pc_bytes == 3 {
            pc = u32::from(self.pop8()?) << 16;
        }
        pc |= u32::from(self.pop8()?) << 8;
        pc |= u32::from(self.pop8()?);
        Ok(pc)
    }

    // ---- execution ----

    /// The decoded instruction starting at word address `pc`: out of the
    /// cache when it is built, straight from the decoder otherwise. Both
    /// paths share [`predecode_at`]'s edge semantics (a two-word opcode
    /// truncated by the end of flash is `Invalid`, width 1).
    #[inline]
    fn fetch_at(&self, pc: u32) -> Result<Predecoded, Fault> {
        if let Some(e) = self.icache.get(pc as usize) {
            return Ok(*e);
        }
        if pc >= self.device.flash_words() {
            return Err(Fault::PcOutOfBounds { pc });
        }
        Ok(predecode_at(&self.flash, pc as usize))
    }

    /// Width in words of the instruction at word address `pc` (for skips).
    fn width_at(&self, pc: u32) -> u32 {
        self.fetch_at(pc).map_or(1, |e| u32::from(e.width))
    }

    /// Timer0 overflow dispatch: ack, push the PC, clear I, vector.
    fn vector_timer0(&mut self) -> Result<(), Fault> {
        self.timer0.ack();
        self.push_pc(self.pc)?;
        let f = self.sreg() & !(1 << avr_core::sreg::I);
        self.set_sreg(f);
        self.pc = timer::TIMER0_OVF_VECTOR * 2; // 4-byte vector slots
        self.cycles += 5;
        self.interrupts_taken += 1;
        if let Some(p) = &mut self.cycle_profile {
            p.interrupt(self.pc * 2, 5);
        }
        Ok(())
    }

    /// ADC conversion-complete dispatch, same shape as [`vector_timer0`].
    ///
    /// [`vector_timer0`]: Machine::vector_timer0
    fn vector_adc(&mut self) -> Result<(), Fault> {
        self.adc.ack();
        self.push_pc(self.pc)?;
        let f = self.sreg() & !(1 << avr_core::sreg::I);
        self.set_sreg(f);
        self.pc = crate::adc::ADC_VECTOR * 2; // 4-byte vector slots
        self.cycles += 5;
        self.interrupts_taken += 1;
        if let Some(p) = &mut self.cycle_profile {
            p.interrupt(self.pc * 2, 5);
        }
        Ok(())
    }

    /// Whether any modelled interrupt source is pending (ignoring the
    /// global I flag and the one-instruction suppression window).
    #[inline]
    fn irq_source_pending(&self) -> bool {
        self.timer0.irq_pending() || self.adc.irq_pending()
    }

    /// Vector the highest-priority pending interrupt: Timer0 overflow
    /// (vector 23) outranks ADC conversion complete (vector 29), as on the
    /// part. The caller has established that a source is pending.
    fn vector_pending(&mut self) -> Result<(), Fault> {
        if self.timer0.irq_pending() {
            self.vector_timer0()
        } else {
            self.vector_adc()
        }
    }

    /// Advance every cycle-driven peripheral in lockstep. Both advances are
    /// linear, so any partition of a cycle span is bit-identical — the
    /// property every batching layer above (blocks, sync points, tails)
    /// leans on.
    #[inline]
    fn advance_peripherals(&mut self, cycles: u64) {
        self.timer0.advance(cycles);
        self.adc.advance(cycles);
    }

    /// Execute one instruction. Returns the fault if the machine crashed;
    /// the fault is sticky and subsequent calls return it again.
    pub fn step(&mut self) -> Result<(), Fault> {
        if let Some(f) = self.fault {
            return Err(f);
        }
        if self.watchdog.expired(self.cycles) {
            return self.fail(Fault::WatchdogTimeout);
        }
        // Interrupt dispatch: with I set and TIMER0_OVF pending, vector —
        // unless the previous instruction wrote SREG (hardware executes one
        // more instruction first; the frame epilogue's `out SREG` relies on
        // this to protect the following `out SPL`).
        let suppressed = std::mem::replace(&mut self.irq_delay, false);
        if !suppressed && self.sreg() & (1 << avr_core::sreg::I) != 0 && self.irq_source_pending() {
            if let Err(f) = self.vector_pending() {
                return self.fail(f);
            }
        }
        let entry = match self.fetch_at(self.pc) {
            Ok(e) => e,
            Err(f) => return self.fail(f),
        };
        if let Some(t) = &mut self.trace {
            let sp =
                u16::from_le_bytes([self.data[SPL_DATA as usize], self.data[SPH_DATA as usize]]);
            t.record(self.pc * 2, sp);
        }
        if let Some(p) = &mut self.profile {
            p.record(self.pc * 2);
        }
        let pc0 = self.pc;
        let width = u32::from(entry.width);
        self.pc += width;
        let c0 = self.cycles;
        self.cycles += u64::from(entry.cycles);
        self.insns_retired += 1;
        let result = self.exec(entry.insn, pc0, width);
        self.advance_peripherals(self.cycles - c0);
        if let Some(p) = &mut self.cycle_profile {
            // On a fault the next PC is meaningless; attribute the cycles
            // but don't follow the (never-completed) call or return.
            let flow = if result.is_err() {
                Flow::Straight
            } else if entry.insn.is_call() {
                Flow::Call
            } else if entry.insn.is_return() {
                Flow::Ret
            } else {
                Flow::Straight
            };
            p.record(pc0 * 2, self.cycles - c0, flow, self.pc * 2);
        }
        match result {
            Ok(()) => Ok(()),
            Err(f) => self.fail(f),
        }
    }

    fn fail(&mut self, f: Fault) -> Result<(), Fault> {
        self.fault = Some(f);
        let (pc, sp) = (self.pc, self.sp());
        self.telemetry.emit("sim.fault", Some(self.cycles), || {
            vec![
                ("fault", Value::Str(f.to_string())),
                ("pc", Value::U64(u64::from(pc) * 2)),
                ("sp", Value::U64(u64::from(sp))),
            ]
        });
        Err(f)
    }

    /// Run until the cycle budget is exhausted, a fault occurs, or a
    /// breakpoint is hit (see [`RunExit`] for the exact exit conditions).
    ///
    /// When nothing needs a per-instruction look — no breakpoints, no trace
    /// ring, no profiler, predecode enabled — this dispatches to a fast
    /// inner loop that runs straight-line batches between event horizons;
    /// otherwise it falls back to the careful per-[`step`] loop. Both paths
    /// produce identical architectural traces.
    ///
    /// [`step`]: Machine::step
    pub fn run(&mut self, max_cycles: u64) -> RunExit {
        let limit = self.cycles.saturating_add(max_cycles);
        if self.predecode
            && self.breakpoints.is_empty()
            && self.trace.is_none()
            && self.profile.is_none()
            && self.cycle_profile.is_none()
        {
            return self.run_fast(limit);
        }
        while self.cycles < limit {
            if self.breakpoints.contains(&self.pc) {
                return RunExit::Breakpoint { addr: self.pc * 2 };
            }
            if let Err(f) = self.step() {
                return RunExit::Faulted(f);
            }
        }
        RunExit::CyclesExhausted
    }

    /// The fast path of [`run`]: per-step cold checks (breakpoint set,
    /// trace/profile hooks, watchdog margin) are hoisted out of the inner
    /// loop, which runs straight-line until the next *event horizon* — the
    /// earliest cycle at which anything other than plain execution can
    /// happen (cycle budget, watchdog deadline). A `wdr` inside a batch
    /// only moves the deadline later, so a stale horizon merely ends the
    /// batch early and the outer loop recomputes it.
    ///
    /// With block fusion enabled, whole straight-line blocks dispatch as
    /// superinstructions: one interrupt/horizon check per block, entered
    /// only when the block provably fits before the horizon and before the
    /// next possible Timer0 overflow delivery (see [`fused_block_at`] for
    /// the exactness conditions). Anything that does not fit — block
    /// boundaries, pending-delivery edges, tiny blocks — falls through to
    /// the per-instruction body, which checks interrupt delivery every
    /// step (two loads and a branch).
    ///
    /// [`run`]: Machine::run
    /// [`fused_block_at`]: Machine::fused_block_at
    fn run_fast(&mut self, limit: u64) -> RunExit {
        self.ensure_icache();
        if self.block_fusion {
            self.bcache.ensure(self.icache.len());
        }
        loop {
            if self.cycles >= limit {
                return RunExit::CyclesExhausted;
            }
            if let Some(f) = self.fault {
                return RunExit::Faulted(f);
            }
            if self.watchdog.expired(self.cycles) {
                let _ = self.fail(Fault::WatchdogTimeout);
                return RunExit::Faulted(Fault::WatchdogTimeout);
            }
            let mut horizon = limit;
            if let Some(d) = self.watchdog.deadline() {
                // First expired cycle is deadline + 1 (see Watchdog::expired).
                horizon = horizon.min(d.saturating_add(1));
            }
            while self.cycles < horizon {
                let suppressed = std::mem::replace(&mut self.irq_delay, false);
                let irq_ready = self.data[SREG_DATA as usize] & (1 << avr_core::sreg::I) != 0
                    && self.irq_source_pending();
                if irq_ready && !suppressed {
                    if let Err(f) = self.vector_pending() {
                        let _ = self.fail(f);
                        return RunExit::Faulted(f);
                    }
                }
                // A suppressed pending interrupt delivers after exactly one
                // more instruction; a fused block would overshoot it.
                if self.block_fusion && !(irq_ready && suppressed) {
                    if let Some(b) = self.fused_block_at(self.pc, horizon) {
                        self.bcache.hits += 1;
                        let rem = match self.exec_block(&b) {
                            Ok(rem) => rem,
                            Err(f) => {
                                let _ = self.fail(f);
                                return RunExit::Faulted(f);
                            }
                        };
                        // Terminator tail: the instruction that ended the
                        // block steps in the same dispatch when no boundary
                        // event intervenes. The body cannot set `irq_delay`
                        // (every delay-setting instruction is itself a
                        // terminator), so the full boundary check reduces to
                        // the horizon and a freshly-pending interrupt — the
                        // block's last cycle may have raised the overflow.
                        if self.cycles < horizon
                            && !(self.data[SREG_DATA as usize] & (1 << avr_core::sreg::I) != 0
                                && self.irq_source_pending())
                        {
                            if let Err(f) = self.step_tail(rem) {
                                let _ = self.fail(f);
                                return RunExit::Faulted(f);
                            }
                        } else {
                            self.advance_peripherals(rem);
                        }
                        continue;
                    }
                }
                if let Err(f) = self.step_tail(0) {
                    let _ = self.fail(f);
                    return RunExit::Faulted(f);
                }
            }
        }
    }

    /// Step one instruction through the predecode table with full
    /// per-instruction accounting — the fallback when no fused block
    /// dispatches (`rem` 0), and the tail step for a block's terminator,
    /// where `rem` is the block's still-owed timer remainder. Pure
    /// control-flow terminators never touch Timer0, so their advance
    /// merges with the remainder into one call; anything that might (an
    /// I/O-dispatching store, an `sbic` probing a timer flag) settles the
    /// remainder first, preserving stepped advance order exactly.
    #[inline]
    fn step_tail(&mut self, rem: u64) -> Result<(), Fault> {
        let entry = match self.icache.get(self.pc as usize) {
            Some(e) => *e,
            None => {
                self.advance_peripherals(rem);
                return Err(Fault::PcOutOfBounds { pc: self.pc });
            }
        };
        let merge = matches!(
            entry.insn,
            Insn::Rjmp { .. }
                | Insn::Jmp { .. }
                | Insn::Ijmp
                | Insn::Eijmp
                | Insn::Brbs { .. }
                | Insn::Brbc { .. }
                | Insn::Ret
                | Insn::Reti
                | Insn::Rcall { .. }
                | Insn::Call { .. }
                | Insn::Icall
                | Insn::Eicall
                | Insn::Cpse { .. }
                | Insn::Sbrc { .. }
                | Insn::Sbrs { .. }
        );
        let rem = if merge {
            rem
        } else {
            self.advance_peripherals(rem);
            0
        };
        let pc0 = self.pc;
        let width = u32::from(entry.width);
        self.pc += width;
        let c0 = self.cycles;
        self.cycles += u64::from(entry.cycles);
        self.insns_retired += 1;
        let result = self.exec(entry.insn, pc0, width);
        self.advance_peripherals(rem + (self.cycles - c0));
        result
    }

    /// The fused block starting at `pc`, if one exists (discovered lazily)
    /// *and* dispatching it whole is provably identical to stepping it:
    ///
    /// 1. the block's folded cycle total fits before `horizon`, so no
    ///    intermediate instruction boundary crosses the cycle budget or the
    ///    watchdog deadline (every instruction costs ≥ 1 cycle, so each
    ///    boundary sits strictly below the horizon);
    /// 2. if Timer0 overflow delivery is armed (I set, TOIE0 set, timer
    ///    running), the block completes no later than the next overflow —
    ///    an overflow raised by the block's *last* cycle is delivered at
    ///    the boundary check after the block, exactly where the stepping
    ///    loop would take it. Mid-block hazards cannot arise otherwise:
    ///    every instruction that could unmask or retrigger the interrupt
    ///    (SREG/TIMSK0/TCCR0B/TCNT0/TIFR0 writes, `sei`) ends a block.
    fn fused_block_at(&mut self, pc: u32, horizon: u64) -> Option<FusedBlock> {
        let b = self.bcache.lookup(&self.icache, pc)?;
        if self.cycles + u64::from(b.cycles) > horizon {
            return None;
        }
        if self.data[SREG_DATA as usize] & (1 << avr_core::sreg::I) != 0 {
            if self.timer0.timsk & timer::TOV0 != 0 {
                if let Some(to_overflow) = self.timer0.cycles_to_overflow() {
                    if u64::from(b.cycles) > to_overflow {
                        return None;
                    }
                }
            }
            // Same reasoning for an armed ADC conversion: the block must
            // complete no later than conversion end, so a completion raised
            // by the last cycle delivers at the boundary check after the
            // block — exactly where stepping would take it. ADC register
            // writes (start, enable, ADIE) all end blocks.
            if self.adc.irq_armed() {
                if let Some(to_done) = self.adc.cycles_to_done() {
                    if u64::from(b.cycles) > to_done {
                        return None;
                    }
                }
            }
        }
        Some(b)
    }

    /// Execute a fused block whose entry conditions [`fused_block_at`] has
    /// already established. Pure blocks run their compiled micro-op stream
    /// and batch *all* per-instruction bookkeeping — `pc`, `cycles`,
    /// `insns_retired`, the timer advance — into one update per block (no
    /// instruction in them reads the PC or cycle counter, faults, or
    /// observes the timer; `Timer0::advance` is linear, so one folded
    /// advance is bit-identical to per-instruction advances). Pure blocks
    /// containing stack ops first prove the whole SP excursion in bounds —
    /// the margin check — so their pushes and pops cannot fault either;
    /// when the proof fails they fall to the careful path, which keeps
    /// per-instruction accounting and fault checks and advances the timer
    /// per instruction only when a load could observe it.
    ///
    /// On success returns the block's *unadvanced* timer remainder: the
    /// cycles the caller still owes [`Timer0::advance`]. The careful path
    /// settles its own advances and returns 0; the pure path defers its
    /// folded advance so the caller can merge it with the terminator
    /// tail's into a single call.
    ///
    /// [`fused_block_at`]: Machine::fused_block_at
    /// [`Timer0::advance`]: Timer0::advance
    fn exec_block(&mut self, b: &FusedBlock) -> Result<u64, Fault> {
        debug_assert_eq!(self.pc, b.start);
        if b.pure && (!b.stack || self.sp_margin_ok(b)) {
            // The stream moves out of `self` for the duration of the block
            // so `exec_mop` can borrow `self` mutably; no micro-op can
            // reach the block cache.
            let mops = std::mem::take(&mut self.bcache.mops);
            let at = b.mops as usize;
            let mut synced: u16 = 0;
            for m in &mops[at..at + usize::from(b.mop_len)] {
                self.exec_mop(m, &mut synced);
            }
            self.bcache.mops = mops;
            self.pc += u32::from(b.words);
            self.cycles += u64::from(b.cycles);
            self.insns_retired += u64::from(b.insns);
            // Timer-sync micro-ops already advanced `synced` of the block's
            // cycles; `advance` is linear, so the returned remainder (the
            // caller's to settle — possibly merged with the terminator
            // tail's own advance) completes the exact per-instruction total.
            return Ok(u64::from(b.cycles) - u64::from(synced));
        }
        // The predecode table moves out of `self` for the duration of the
        // block so `exec` can borrow `self` mutably. No fusable instruction
        // can reach it: flash writes (`spm`) are structural terminators and
        // `exec` never consults the table otherwise.
        let icache = std::mem::take(&mut self.icache);
        let result = self.exec_block_careful(b, &icache);
        self.icache = icache;
        result.map(|()| 0)
    }

    /// Prove every stack access of a pure block in bounds from the entry
    /// SP: accesses span `sp + sp_lo ..= sp + sp_hi` (the compile-time
    /// excursion), so one range check covers them all.
    fn sp_margin_ok(&self, b: &FusedBlock) -> bool {
        let sp = i32::from(self.sp());
        sp + i32::from(b.sp_lo) >= 0 && sp + i32::from(b.sp_hi) < self.data.len() as i32
    }

    /// Execute one compiled micro-op. Infallible by construction: the
    /// compile pass only emits ops that cannot fault, and the dispatch
    /// margin check discharges the stack ops' bounds obligations. `synced`
    /// tracks how many block-relative cycles the timer has already been
    /// advanced by in-block sync points (see [`Machine::sync_timer`]).
    fn exec_mop(&mut self, m: &MicroOp, synced: &mut u16) {
        let a = usize::from(m.a);
        let b = usize::from(m.b);
        // Register-file/I/O/SREG window: `u8` operands indexing a
        // fixed-size array need no bounds checks on the hot ALU ops.
        let head: &mut [u8; 256] = (&mut self.data[..256])
            .try_into()
            .expect("data space holds at least the I/O window");
        match m.op {
            Mop::Nop => {}

            // ---- ALU, flags live ----
            Mop::Add => mop_alu2(head, a, b, |x, y, f| alu::add8(x, y, false, f)),
            Mop::Adc => {
                let c = head[SREG_IDX] & alu::C != 0;
                mop_alu2(head, a, b, move |x, y, f| alu::add8(x, y, c, f));
            }
            Mop::Sub => mop_alu2(head, a, b, |x, y, f| alu::sub8(x, y, false, false, f)),
            Mop::Sbc => {
                let c = head[SREG_IDX] & alu::C != 0;
                mop_alu2(head, a, b, move |x, y, f| alu::sub8(x, y, c, true, f));
            }
            Mop::And => mop_alu2(head, a, b, |x, y, f| alu::logic8(x & y, f)),
            Mop::Or => mop_alu2(head, a, b, |x, y, f| alu::logic8(x | y, f)),
            Mop::Eor => mop_alu2(head, a, b, |x, y, f| alu::logic8(x ^ y, f)),
            Mop::Cp => {
                let (_, f) = alu::sub8(head[a], head[b], false, false, head[SREG_IDX]);
                head[SREG_IDX] = f;
            }
            Mop::Cpc => {
                let c = head[SREG_IDX] & alu::C != 0;
                let (_, f) = alu::sub8(head[a], head[b], c, true, head[SREG_IDX]);
                head[SREG_IDX] = f;
            }
            Mop::Cpi => {
                let (_, f) = alu::sub8(head[a], m.b, false, false, head[SREG_IDX]);
                head[SREG_IDX] = f;
            }
            Mop::Subi => mop_alu1(head, a, |x, f| alu::sub8(x, m.b, false, false, f)),
            Mop::Sbci => {
                let c = head[SREG_IDX] & alu::C != 0;
                mop_alu1(head, a, move |x, f| alu::sub8(x, m.b, c, true, f));
            }
            Mop::Andi => mop_alu1(head, a, |x, f| alu::logic8(x & m.b, f)),
            Mop::Ori => mop_alu1(head, a, |x, f| alu::logic8(x | m.b, f)),
            Mop::Com => mop_alu1(head, a, alu::com8),
            Mop::Neg => mop_alu1(head, a, alu::neg8),
            Mop::Inc => mop_alu1(head, a, alu::inc8),
            Mop::Dec => mop_alu1(head, a, alu::dec8),
            Mop::Asr => mop_alu1(head, a, alu::asr8),
            Mop::Lsr => mop_alu1(head, a, alu::lsr8),
            Mop::Ror => mop_alu1(head, a, alu::ror8),
            Mop::Mul => mop_mul(head, a, b, false, false, false),
            Mop::Muls => mop_mul(head, a, b, true, true, false),
            Mop::Mulsu => mop_mul(head, a, b, true, false, false),
            Mop::Fmul => mop_mul(head, a, b, false, false, true),
            Mop::Fmuls => mop_mul(head, a, b, true, true, true),
            Mop::Fmulsu => mop_mul(head, a, b, true, false, true),
            Mop::Adiw => {
                let (r, f) = alu::adiw16(pair_at(head, a), m.b, head[SREG_IDX]);
                set_pair_at(head, a, r);
                head[SREG_IDX] = f;
            }
            Mop::Sbiw => {
                let (r, f) = alu::sbiw16(pair_at(head, a), m.b, head[SREG_IDX]);
                set_pair_at(head, a, r);
                head[SREG_IDX] = f;
            }

            // ---- ALU, flags dead ----
            Mop::AddNf => head[a] = head[a].wrapping_add(head[b]),
            Mop::AdcNf => {
                let c = head[SREG_IDX] & alu::C;
                head[a] = head[a].wrapping_add(head[b]).wrapping_add(c);
            }
            Mop::SubNf => head[a] = head[a].wrapping_sub(head[b]),
            Mop::SbcNf => {
                let c = head[SREG_IDX] & alu::C;
                head[a] = head[a].wrapping_sub(head[b]).wrapping_sub(c);
            }
            Mop::AndNf => head[a] &= head[b],
            Mop::OrNf => head[a] |= head[b],
            Mop::EorNf => head[a] ^= head[b],
            Mop::SubiNf => head[a] = head[a].wrapping_sub(m.b),
            Mop::SbciNf => {
                let c = head[SREG_IDX] & alu::C;
                head[a] = head[a].wrapping_sub(m.b).wrapping_sub(c);
            }
            Mop::AndiNf => head[a] &= m.b,
            Mop::OriNf => head[a] |= m.b,
            Mop::ComNf => head[a] = !head[a],
            Mop::NegNf => head[a] = 0u8.wrapping_sub(head[a]),
            Mop::IncNf => head[a] = head[a].wrapping_add(1),
            Mop::DecNf => head[a] = head[a].wrapping_sub(1),
            Mop::AsrNf => head[a] = ((head[a] as i8) >> 1) as u8,
            Mop::LsrNf => head[a] >>= 1,
            Mop::RorNf => {
                let c = head[SREG_IDX] & alu::C;
                head[a] = (head[a] >> 1) | (c << 7);
            }
            Mop::AdiwNf => {
                let r = pair_at(head, a).wrapping_add(u16::from(m.b));
                set_pair_at(head, a, r);
            }
            Mop::SbiwNf => {
                let r = pair_at(head, a).wrapping_sub(u16::from(m.b));
                set_pair_at(head, a, r);
            }

            // ---- moves & SREG bits ----
            Mop::Mov => head[a] = head[b],
            Mop::Movw => {
                let v = pair_at(head, b);
                set_pair_at(head, a, v);
            }
            Mop::Ldi => head[a] = m.b,
            Mop::Swap => head[a] = head[a].rotate_right(4),
            Mop::BsetM => head[SREG_IDX] |= m.a,
            Mop::BclrM => head[SREG_IDX] &= !m.a,
            Mop::Bst => {
                let mut f = head[SREG_IDX] & !alu::T;
                if head[a] & m.b != 0 {
                    f |= alu::T;
                }
                head[SREG_IDX] = f;
            }
            Mop::Bld => {
                if head[SREG_IDX] & alu::T != 0 {
                    head[a] |= m.b;
                } else {
                    head[a] &= !m.b;
                }
            }

            // ---- memory ----
            Mop::Lds => {
                let v = self.read_data(m.k);
                self.data[a] = v;
            }
            Mop::Sts => {
                let v = self.data[a];
                self.write_data(m.k, v);
            }
            Mop::SbiM => {
                let v = self.read_data(m.k) | m.b;
                self.write_data(m.k, v);
            }
            Mop::CbiM => {
                let v = self.read_data(m.k) & !m.b;
                self.write_data(m.k, v);
            }
            Mop::Push => {
                let r = self.push8(self.data[a]);
                debug_assert!(
                    r.is_ok(),
                    "sp-margin-checked push cannot fault: sp={:#x} pc={:#x}",
                    self.sp(),
                    self.pc
                );
                let _ = r;
            }
            Mop::Pop => match self.pop8() {
                Ok(v) => self.data[a] = v,
                Err(_) => debug_assert!(false, "sp-margin-checked pop cannot fault"),
            },
            Mop::Lpm => {
                let z = pair_at(head, 30);
                self.data[a] = self.flash_byte(u32::from(z));
            }
            Mop::LpmInc => {
                let z = pair_at(head, 30);
                set_pair_at(head, 30, z.wrapping_add(1));
                self.data[a] = self.flash_byte(u32::from(z));
            }
            Mop::Elpm => {
                let addr = self.rampz_z();
                self.data[a] = self.flash_byte(addr);
            }
            Mop::ElpmInc => {
                let addr = self.rampz_z();
                self.data[a] = self.flash_byte(addr);
                self.bump_rampz_z();
            }

            // ---- cycle-offset carriers ----
            Mop::LdsT => {
                // Only emitted for cycle-dependent registers (timer block,
                // ADC result/status): always needs the sync.
                self.sync_timer(m.b.into(), synced);
                let v = self.read_data(m.k);
                self.data[a] = v;
            }
            Mop::LdP => {
                let base = usize::from(m.k as u8) & 0x3f;
                let addr = pair_at(head, base);
                self.load_indirect(addr, a, m.b.into(), synced);
            }
            Mop::LdPInc => {
                let base = usize::from(m.k as u8) & 0x3f;
                let addr = pair_at(head, base);
                set_pair_at(head, base, addr.wrapping_add(1));
                self.load_indirect(addr, a, m.b.into(), synced);
            }
            Mop::LdPDec => {
                let base = usize::from(m.k as u8) & 0x3f;
                let addr = pair_at(head, base).wrapping_sub(1);
                set_pair_at(head, base, addr);
                self.load_indirect(addr, a, m.b.into(), synced);
            }
            Mop::LddQ => {
                let base = usize::from(m.k as u8) & 0x3f;
                let addr = pair_at(head, base).wrapping_add(m.k >> 8);
                self.load_indirect(addr, a, m.b.into(), synced);
            }
            Mop::WdrT => self.watchdog.pet(self.cycles + b as u64),
            Mop::StsHb => {
                let v = self.portb.write(self.data[a]);
                self.heartbeat
                    .observe(v, HEARTBEAT_BIT, self.cycles + b as u64);
                self.data[PORTB_ADDR as usize] = v;
            }
            Mop::SbiHb => {
                let v = self.portb.write(self.portb.read() | m.a);
                self.heartbeat
                    .observe(v, HEARTBEAT_BIT, self.cycles + b as u64);
                self.data[PORTB_ADDR as usize] = v;
            }
            Mop::CbiHb => {
                // `a` holds the complement mask (bit already inverted).
                let v = self.portb.write(self.portb.read() & m.a);
                self.heartbeat
                    .observe(v, HEARTBEAT_BIT, self.cycles + b as u64);
                self.data[PORTB_ADDR as usize] = v;
            }
        }
    }

    /// Advance the cycle-driven peripherals to block-relative offset `off`
    /// (they are already at `synced`), so the next read observes exactly
    /// what per-instruction stepping would. Both advances are linear, so
    /// splitting the block total into sync points plus a remainder is
    /// bit-identical.
    fn sync_timer(&mut self, off: u16, synced: &mut u16) {
        if off > *synced {
            self.advance_peripherals(u64::from(off - *synced));
            *synced = off;
        }
    }

    /// Indirect-load tail: sync the cycle-driven peripherals first when the
    /// computed address lands on a cycle-dependent register (the timer
    /// block, or the ADC's result/status registers while a conversion is
    /// in flight).
    fn load_indirect(&mut self, addr: u16, d: usize, off: u16, synced: &mut u16) {
        if matches!(addr, TCNT0_ADDR | TIFR0_ADDR | ADCL_ADDR..=ADMUX_ADDR) {
            self.sync_timer(off, synced);
        }
        let v = self.read_data(addr);
        self.data[d] = v;
    }

    fn exec_block_careful(&mut self, b: &FusedBlock, icache: &[Predecoded]) -> Result<(), Fault> {
        let c_start = self.cycles;
        let mut w = b.start as usize;
        for _ in 0..b.insns {
            let e = &icache[w];
            w += usize::from(e.width);
            let pc0 = self.pc;
            let width = u32::from(e.width);
            self.pc += width;
            let c0 = self.cycles;
            self.cycles += u64::from(e.cycles);
            self.insns_retired += 1;
            let result = self.exec(e.insn, pc0, width);
            if b.timer_reads {
                self.advance_peripherals(self.cycles - c0);
            }
            if let Err(f) = result {
                // A fault mid-block leaves the peripherals exactly as the
                // stepping loop would: advanced through the faulting
                // instruction (step() advances even on Err).
                if !b.timer_reads {
                    self.advance_peripherals(self.cycles - c_start);
                }
                return Err(f);
            }
        }
        if !b.timer_reads {
            self.advance_peripherals(self.cycles - c_start);
        }
        Ok(())
    }

    /// Run until `pred` returns true (checked after every instruction), a
    /// breakpoint is hit (checked before each instruction, exactly as in
    /// [`run`]), a fault occurs, or the cycle budget is exhausted. The exit
    /// conditions are documented on [`RunExit`].
    ///
    /// [`run`]: Machine::run
    pub fn run_until(
        &mut self,
        max_cycles: u64,
        mut pred: impl FnMut(&Machine) -> bool,
    ) -> RunExit {
        let limit = self.cycles.saturating_add(max_cycles);
        while self.cycles < limit {
            if self.breakpoints.contains(&self.pc) {
                return RunExit::Breakpoint { addr: self.pc * 2 };
            }
            if let Err(f) = self.step() {
                return RunExit::Faulted(f);
            }
            if pred(self) {
                return RunExit::Breakpoint { addr: self.pc * 2 };
            }
        }
        RunExit::CyclesExhausted
    }

    fn skip_next(&mut self) {
        let w = self.width_at(self.pc);
        self.pc += w;
        self.cycles += u64::from(w);
    }

    fn exec(&mut self, insn: Insn, pc0: u32, width: u32) -> Result<(), Fault> {
        let next = pc0 + width;
        match insn {
            Insn::Nop | Insn::Sleep | Insn::Spm | Insn::SpmZPostInc => {}
            Insn::Wdr => self.watchdog.pet(self.cycles),
            Insn::Break => return Err(Fault::Break { addr: pc0 * 2 }),
            Insn::Invalid(word) => {
                return Err(Fault::InvalidOpcode {
                    addr: pc0 * 2,
                    word,
                })
            }

            // ---- ALU, two-register ----
            Insn::Add { d, r } => self.alu2(d, r, |a, b, f| alu::add8(a, b, false, f)),
            Insn::Adc { d, r } => {
                let c = self.sreg() & alu::C != 0;
                self.alu2(d, r, move |a, b, f| alu::add8(a, b, c, f))
            }
            Insn::Sub { d, r } => self.alu2(d, r, |a, b, f| alu::sub8(a, b, false, false, f)),
            Insn::Sbc { d, r } => {
                let c = self.sreg() & alu::C != 0;
                self.alu2(d, r, move |a, b, f| alu::sub8(a, b, c, true, f))
            }
            Insn::And { d, r } => self.alu2(d, r, |a, b, f| alu::logic8(a & b, f)),
            Insn::Or { d, r } => self.alu2(d, r, |a, b, f| alu::logic8(a | b, f)),
            Insn::Eor { d, r } => self.alu2(d, r, |a, b, f| alu::logic8(a ^ b, f)),
            Insn::Cp { d, r } => {
                let (_, f) = alu::sub8(self.reg(d), self.reg(r), false, false, self.sreg());
                self.set_sreg(f);
            }
            Insn::Cpc { d, r } => {
                let c = self.sreg() & alu::C != 0;
                let (_, f) = alu::sub8(self.reg(d), self.reg(r), c, true, self.sreg());
                self.set_sreg(f);
            }
            Insn::Mov { d, r } => {
                let v = self.reg(r);
                self.set_reg(d, v);
            }
            Insn::Movw { d, r } => {
                let v = self.reg_pair(r);
                self.set_reg_pair(d, v);
            }

            // ---- immediates ----
            Insn::Ldi { d, k } => self.set_reg(d, k),
            Insn::Cpi { d, k } => {
                let (_, f) = alu::sub8(self.reg(d), k, false, false, self.sreg());
                self.set_sreg(f);
            }
            Insn::Subi { d, k } => self.alu1(d, |a, f| alu::sub8(a, k, false, false, f)),
            Insn::Sbci { d, k } => {
                let c = self.sreg() & alu::C != 0;
                self.alu1(d, move |a, f| alu::sub8(a, k, c, true, f))
            }
            Insn::Ori { d, k } => self.alu1(d, move |a, f| alu::logic8(a | k, f)),
            Insn::Andi { d, k } => self.alu1(d, move |a, f| alu::logic8(a & k, f)),

            // ---- single register ----
            Insn::Com { d } => self.alu1(d, alu::com8),
            Insn::Neg { d } => self.alu1(d, alu::neg8),
            Insn::Swap { d } => {
                let v = self.reg(d);
                self.set_reg(d, v.rotate_right(4));
            }
            Insn::Inc { d } => self.alu1(d, alu::inc8),
            Insn::Dec { d } => self.alu1(d, alu::dec8),
            Insn::Asr { d } => self.alu1(d, alu::asr8),
            Insn::Lsr { d } => self.alu1(d, alu::lsr8),
            Insn::Ror { d } => self.alu1(d, alu::ror8),

            // ---- multiplies ----
            Insn::Mul { d, r } => self.do_mul(d, r, false, false, false),
            Insn::Muls { d, r } => self.do_mul(d, r, true, true, false),
            Insn::Mulsu { d, r } => self.do_mul(d, r, true, false, false),
            Insn::Fmul { d, r } => self.do_mul(d, r, false, false, true),
            Insn::Fmuls { d, r } => self.do_mul(d, r, true, true, true),
            Insn::Fmulsu { d, r } => self.do_mul(d, r, true, false, true),

            // ---- word immediate ----
            Insn::Adiw { d, k } => {
                let (r, f) = alu::adiw16(self.reg_pair(d), k, self.sreg());
                self.set_reg_pair(d, r);
                self.set_sreg(f);
            }
            Insn::Sbiw { d, k } => {
                let (r, f) = alu::sbiw16(self.reg_pair(d), k, self.sreg());
                self.set_reg_pair(d, r);
                self.set_sreg(f);
            }

            // ---- loads & stores ----
            Insn::Ld { d, ptr } => {
                let addr = self.ptr_address(ptr);
                let v = self.read_data(addr);
                self.set_reg(d, v);
            }
            Insn::St { ptr, r } => {
                let v = self.reg(r);
                let addr = self.ptr_address(ptr);
                self.write_data(addr, v);
            }
            Insn::Ldd { d, idx, q } => {
                let base = self.reg_pair(idx.base());
                let v = self.read_data(base.wrapping_add(u16::from(q)));
                self.set_reg(d, v);
            }
            Insn::Std { idx, q, r } => {
                let base = self.reg_pair(idx.base());
                let v = self.reg(r);
                self.write_data(base.wrapping_add(u16::from(q)), v);
            }
            Insn::Lds { d, k } => {
                let v = self.read_data(k);
                self.set_reg(d, v);
            }
            Insn::Sts { k, r } => {
                let v = self.reg(r);
                self.write_data(k, v);
                if k == SREG_DATA {
                    self.irq_delay = true;
                }
            }
            Insn::Lpm { d, post_inc } => {
                let z = self.reg_pair(Reg::R30);
                let v = self.flash_byte(u32::from(z));
                self.set_reg(d, v);
                if post_inc {
                    self.set_reg_pair(Reg::R30, z.wrapping_add(1));
                }
            }
            Insn::Lpm0 => {
                let z = self.reg_pair(Reg::R30);
                let v = self.flash_byte(u32::from(z));
                self.set_reg(Reg::R0, v);
            }
            Insn::Elpm { d, post_inc } => {
                let addr = self.rampz_z();
                let v = self.flash_byte(addr);
                self.set_reg(d, v);
                if post_inc {
                    self.bump_rampz_z();
                }
            }
            Insn::Elpm0 => {
                let addr = self.rampz_z();
                let v = self.flash_byte(addr);
                self.set_reg(Reg::R0, v);
            }
            Insn::Push { r } => {
                let v = self.reg(r);
                self.push8(v)?;
            }
            Insn::Pop { d } => {
                let v = self.pop8()?;
                self.set_reg(d, v);
            }
            Insn::In { d, a } => {
                let v = self.read_data(io::to_data_address(a));
                self.set_reg(d, v);
            }
            Insn::Out { a, r } => {
                let v = self.reg(r);
                self.write_data(io::to_data_address(a), v);
                if a == io::SREG {
                    self.irq_delay = true;
                }
            }

            // ---- control flow ----
            Insn::Jmp { k } => self.pc = k,
            Insn::Rjmp { k } => self.pc = next.wrapping_add_signed(i32::from(k)),
            Insn::Ijmp => self.pc = u32::from(self.reg_pair(Reg::R30)),
            Insn::Eijmp => {
                let eind = u32::from(self.peek_data(EIND_DATA) & 1);
                self.pc = (eind << 16) | u32::from(self.reg_pair(Reg::R30));
            }
            Insn::Call { k } => {
                self.push_pc(next)?;
                self.pc = k;
            }
            Insn::Rcall { k } => {
                self.push_pc(next)?;
                self.pc = next.wrapping_add_signed(i32::from(k));
            }
            Insn::Icall => {
                self.push_pc(next)?;
                self.pc = u32::from(self.reg_pair(Reg::R30));
            }
            Insn::Eicall => {
                self.push_pc(next)?;
                let eind = u32::from(self.peek_data(EIND_DATA) & 1);
                self.pc = (eind << 16) | u32::from(self.reg_pair(Reg::R30));
            }
            Insn::Ret => self.pc = self.pop_pc()?,
            Insn::Reti => {
                self.pc = self.pop_pc()?;
                let f = self.sreg() | (1 << avr_core::sreg::I);
                self.set_sreg(f);
                self.irq_delay = true;
            }
            Insn::Brbs { s, k } => {
                if self.sreg() & (1 << s) != 0 {
                    self.pc = next.wrapping_add_signed(i32::from(k));
                    self.cycles += 1;
                }
            }
            Insn::Brbc { s, k } => {
                if self.sreg() & (1 << s) == 0 {
                    self.pc = next.wrapping_add_signed(i32::from(k));
                    self.cycles += 1;
                }
            }
            Insn::Cpse { d, r } => {
                if self.reg(d) == self.reg(r) {
                    self.skip_next();
                }
            }
            Insn::Sbrc { r, b } => {
                if self.reg(r) & (1 << b) == 0 {
                    self.skip_next();
                }
            }
            Insn::Sbrs { r, b } => {
                if self.reg(r) & (1 << b) != 0 {
                    self.skip_next();
                }
            }
            Insn::Sbic { a, b } => {
                if self.read_data(io::to_data_address(a)) & (1 << b) == 0 {
                    self.skip_next();
                }
            }
            Insn::Sbis { a, b } => {
                if self.read_data(io::to_data_address(a)) & (1 << b) != 0 {
                    self.skip_next();
                }
            }

            // ---- bit ops ----
            Insn::Bset { s } => {
                let f = self.sreg() | (1 << s);
                self.set_sreg(f);
                if s == avr_core::sreg::I {
                    self.irq_delay = true;
                }
            }
            Insn::Bclr { s } => {
                let f = self.sreg() & !(1 << s);
                self.set_sreg(f);
            }
            Insn::Bst { d, b } => {
                let t = self.reg(d) & (1 << b) != 0;
                let mut f = self.sreg() & !alu::T;
                if t {
                    f |= alu::T;
                }
                self.set_sreg(f);
            }
            Insn::Bld { d, b } => {
                let mut v = self.reg(d) & !(1 << b);
                if self.sreg() & alu::T != 0 {
                    v |= 1 << b;
                }
                self.set_reg(d, v);
            }
            Insn::Sbi { a, b } => {
                let addr = io::to_data_address(a);
                let v = self.read_data(addr) | (1 << b);
                self.write_data(addr, v);
            }
            Insn::Cbi { a, b } => {
                let addr = io::to_data_address(a);
                let v = self.read_data(addr) & !(1 << b);
                self.write_data(addr, v);
            }
        }
        Ok(())
    }

    fn alu2(&mut self, d: Reg, r: Reg, op: impl FnOnce(u8, u8, u8) -> (u8, u8)) {
        let (res, f) = op(self.reg(d), self.reg(r), self.sreg());
        self.set_reg(d, res);
        self.set_sreg(f);
    }

    fn alu1(&mut self, d: Reg, op: impl FnOnce(u8, u8) -> (u8, u8)) {
        let (res, f) = op(self.reg(d), self.sreg());
        self.set_reg(d, res);
        self.set_sreg(f);
    }

    fn do_mul(&mut self, d: Reg, r: Reg, sd: bool, sr: bool, fract: bool) {
        let (p, f) = alu::mul16(self.reg(d), self.reg(r), sd, sr, fract, self.sreg());
        self.set_reg_pair(Reg::R0, p);
        self.set_sreg(f);
    }

    fn ptr_address(&mut self, ptr: PtrReg) -> u16 {
        let base = ptr.base();
        match ptr {
            PtrReg::X => self.reg_pair(base),
            PtrReg::XPostInc | PtrReg::YPostInc | PtrReg::ZPostInc => {
                let a = self.reg_pair(base);
                self.set_reg_pair(base, a.wrapping_add(1));
                a
            }
            PtrReg::XPreDec | PtrReg::YPreDec | PtrReg::ZPreDec => {
                let a = self.reg_pair(base).wrapping_sub(1);
                self.set_reg_pair(base, a);
                a
            }
        }
    }

    fn flash_byte(&self, byte_addr: u32) -> u8 {
        self.flash.get(byte_addr as usize).copied().unwrap_or(0xff)
    }

    fn rampz_z(&self) -> u32 {
        (u32::from(self.peek_data(RAMPZ_DATA)) << 16) | u32::from(self.reg_pair(Reg::R30))
    }

    fn bump_rampz_z(&mut self) {
        let a = self.rampz_z().wrapping_add(1);
        self.set_reg_pair(Reg::R30, (a & 0xffff) as u16);
        self.poke_data(RAMPZ_DATA, ((a >> 16) & 0xff) as u8);
    }

    /// Enable instruction tracing with a ring buffer of `capacity` entries.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// Disable tracing and drop the buffer.
    pub fn disable_trace(&mut self) {
        self.trace = None;
    }

    /// The trace buffer, if tracing is enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Enable the hot-PC histogram profiler, bucketing flash into
    /// `bucket_bytes`-sized bins.
    pub fn enable_profile(&mut self, bucket_bytes: u32) {
        self.profile = Some(PcProfile::new(self.device.flash_bytes, bucket_bytes));
    }

    /// Disable profiling and drop the histogram.
    pub fn disable_profile(&mut self) {
        self.profile = None;
    }

    /// The PC histogram, if profiling is enabled.
    pub fn profile(&self) -> Option<&PcProfile> {
        self.profile.as_ref()
    }

    /// Enable the symbol-attributed cycle profiler over `image`'s symbol
    /// table. Forces the careful per-step loop while active (the fast
    /// event-horizon loop has no per-instruction hook), so expect the
    /// uncached-run throughput until disabled.
    pub fn enable_cycle_profile(&mut self, image: &avr_core::image::FirmwareImage) {
        self.cycle_profile = Some(Box::new(CycleProfile::from_image(image)));
    }

    /// Disable cycle profiling and drop the data.
    pub fn disable_cycle_profile(&mut self) {
        self.cycle_profile = None;
    }

    /// The cycle profile, if enabled.
    pub fn cycle_profile(&self) -> Option<&CycleProfile> {
        self.cycle_profile.as_deref()
    }

    /// Detach and return the cycle profile, disabling further profiling.
    pub fn take_cycle_profile(&mut self) -> Option<CycleProfile> {
        self.cycle_profile.take().map(|b| *b)
    }

    /// Snapshot the activity counters across the core and its peripherals.
    pub fn counters(&self) -> SimCounters {
        SimCounters {
            insns_retired: self.insns_retired,
            cycles: self.cycles,
            interrupts_taken: self.interrupts_taken,
            uart_rx_bytes: self.uart0.rx_bytes,
            uart_tx_bytes: self.uart0.tx_bytes,
            eeprom_writes: self.eeprom.writes,
        }
    }

    // ---- snapshot / restore ----

    /// Capture the complete architectural state of the machine: memories,
    /// CPU registers (which live in the data space), and every peripheral.
    ///
    /// Host-side observability — breakpoints, trace ring, profiler,
    /// telemetry handle, and the predecode cache — is deliberately *not*
    /// part of the state: it does not influence execution (the differential
    /// tests prove the cache is a pure memoization), so two machines that
    /// compare equal here produce identical futures.
    pub fn capture_state(&self) -> MachineState {
        MachineState {
            flash: self.flash.clone(),
            data: self.data.clone(),
            eeprom: self.eeprom.state(),
            pc: self.pc,
            cycles: self.cycles,
            fault: self.fault,
            irq_delay: self.irq_delay,
            uart0: self.uart0.state(),
            heartbeat: self.heartbeat.state(),
            watchdog: self.watchdog.state(),
            timer0: self.timer0.state(),
            adc: self.adc.state(),
            pwm: self.pwm,
            portb: self.portb.value,
            insns_retired: self.insns_retired,
            interrupts_taken: self.interrupts_taken,
        }
    }

    /// Replace the architectural state with a snapshot taken by
    /// [`Machine::capture_state`].
    ///
    /// The predecode cache is dropped (it memoizes the *old* flash) and
    /// rebuilt lazily by the next fast run, so restoring is equally correct
    /// under `set_predecode(true)` and `(false)`. Everything becomes dirty:
    /// the next delta snapshot after a restore is a full capture.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's memory sizes do not match this device.
    pub fn restore_state(&mut self, s: &MachineState) {
        assert_eq!(
            s.flash.len(),
            self.flash.len(),
            "snapshot flash size does not match device"
        );
        assert_eq!(
            s.data.len(),
            self.data.len(),
            "snapshot data-space size does not match device"
        );
        self.flash.copy_from_slice(&s.flash);
        self.data.copy_from_slice(&s.data);
        self.eeprom.restore(&s.eeprom);
        self.pc = s.pc;
        self.cycles = s.cycles;
        self.fault = s.fault;
        self.irq_delay = s.irq_delay;
        self.uart0.restore(&s.uart0);
        self.heartbeat.restore(&s.heartbeat);
        self.watchdog.restore(&s.watchdog);
        self.timer0.restore(&s.timer0);
        self.adc.restore(&s.adc);
        self.pwm = s.pwm;
        self.portb.value = s.portb;
        self.insns_retired = s.insns_retired;
        self.interrupts_taken = s.interrupts_taken;
        self.icache = Vec::new();
        self.bcache.clear(false);
        self.dirty_data = !0;
        self.dirty_flash.fill(!0);
    }
}

/// SREG's index inside the head window (`0x5f`, well under 256).
const SREG_IDX: usize = SREG_DATA as usize;

fn mop_alu2(head: &mut [u8; 256], a: usize, b: usize, op: impl FnOnce(u8, u8, u8) -> (u8, u8)) {
    let (r, f) = op(head[a], head[b], head[SREG_IDX]);
    head[a] = r;
    head[SREG_IDX] = f;
}

fn mop_alu1(head: &mut [u8; 256], a: usize, op: impl FnOnce(u8, u8) -> (u8, u8)) {
    let (r, f) = op(head[a], head[SREG_IDX]);
    head[a] = r;
    head[SREG_IDX] = f;
}

fn mop_mul(head: &mut [u8; 256], a: usize, b: usize, sd: bool, sr: bool, fract: bool) {
    let (p, f) = alu::mul16(head[a], head[b], sd, sr, fract, head[SREG_IDX]);
    set_pair_at(head, 0, p);
    head[SREG_IDX] = f;
}

/// Little-endian register-pair read. The index is masked so `a + 1` stays
/// inside the window; pair operands only ever target registers 0..=30.
fn pair_at(head: &[u8; 256], a: usize) -> u16 {
    let a = a & 0x3f;
    u16::from_le_bytes([head[a], head[a + 1]])
}

fn set_pair_at(head: &mut [u8; 256], a: usize, v: u16) {
    let a = a & 0x3f;
    let [lo, hi] = v.to_le_bytes();
    head[a] = lo;
    head[a + 1] = hi;
}

/// Serializable snapshot of a [`Machine`]'s complete architectural state.
///
/// Produced by [`Machine::capture_state`], consumed by
/// [`Machine::restore_state`]; the `snapshot` crate gives it a versioned,
/// CRC-guarded wire format. Two machines restored from equal states run
/// lockstep-identically forever (the snapshot proptests assert this
/// through IRQs, watchdog resets and reflashes).
#[derive(Debug, Clone, PartialEq)]
pub struct MachineState {
    /// Program flash image.
    pub flash: Vec<u8>,
    /// The linear data space: registers, I/O, SRAM.
    pub data: Vec<u8>,
    /// EEPROM array and register state machine.
    pub eeprom: crate::eeprom::EepromState,
    /// Program counter, in words.
    pub pc: u32,
    /// Elapsed CPU cycles.
    pub cycles: u64,
    /// Sticky fault, if crashed.
    pub fault: Option<Fault>,
    /// One-instruction interrupt suppression pending (SREG write / reti).
    pub irq_delay: bool,
    /// USART0 buffers and counters.
    pub uart0: crate::periph::UartState,
    /// Heartbeat toggle history.
    pub heartbeat: crate::periph::HeartbeatState,
    /// Watchdog configuration.
    pub watchdog: crate::periph::WatchdogState,
    /// Timer/Counter0 registers.
    pub timer0: crate::timer::Timer0State,
    /// ADC registers, conversion countdown and analog inputs.
    pub adc: crate::adc::AdcState,
    /// PWM duty latches.
    pub pwm: crate::periph::Pwm,
    /// PORTB output latch.
    pub portb: u8,
    /// Instructions retired.
    pub insns_retired: u64,
    /// Interrupts vectored.
    pub interrupts_taken: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use avr_core::encode::encode_to_bytes;

    fn machine_with(prog: &[Insn]) -> Machine {
        let mut m = Machine::new_atmega2560();
        m.load_flash(0, &encode_to_bytes(prog).unwrap());
        m
    }

    #[test]
    fn arithmetic_and_store() {
        let mut m = machine_with(&[
            Insn::Ldi { d: Reg::R24, k: 40 },
            Insn::Ldi { d: Reg::R25, k: 2 },
            Insn::Add {
                d: Reg::R24,
                r: Reg::R25,
            },
            Insn::Sts {
                k: 0x0300,
                r: Reg::R24,
            },
            Insn::Break,
        ]);
        let exit = m.run(100);
        assert!(matches!(exit, RunExit::Faulted(Fault::Break { .. })));
        assert_eq!(m.peek_data(0x0300), 42);
    }

    #[test]
    fn adc_poll_loop_is_identical_across_engines() {
        use crate::adc::{ADCH_ADDR, ADCSRA_ADDR, ADLAR, ADMUX_ADDR};
        // Start a conversion on channel 2 (left-adjusted), poll ADSC, read
        // ADCH, store it — the exact idiom the flight firmware uses.
        let prog = [
            Insn::Ldi {
                d: Reg::R24,
                k: ADLAR | 2,
            },
            Insn::Sts {
                k: ADMUX_ADDR,
                r: Reg::R24,
            },
            Insn::Ldi {
                d: Reg::R24,
                k: crate::adc::ADEN | crate::adc::ADSC | 0x02,
            },
            Insn::Sts {
                k: ADCSRA_ADDR,
                r: Reg::R24,
            },
            Insn::Lds {
                d: Reg::R25,
                k: ADCSRA_ADDR,
            },
            Insn::Sbrc { r: Reg::R25, b: 6 },
            Insn::Rjmp { k: -4 },
            Insn::Lds {
                d: Reg::R26,
                k: ADCH_ADDR,
            },
            Insn::Sts {
                k: 0x0400,
                r: Reg::R26,
            },
            Insn::Break,
        ];
        let run_one = |predecode: bool, fusion: bool| {
            let mut m = machine_with(&prog);
            m.set_predecode(predecode);
            m.set_block_fusion(fusion);
            m.adc.channels[2] = 0x2a5;
            let exit = m.run(10_000);
            assert!(matches!(exit, RunExit::Faulted(Fault::Break { .. })));
            m.capture_state()
        };
        let fused = run_one(true, true);
        let predecoded = run_one(true, false);
        let uncached = run_one(false, false);
        assert_eq!(fused.data[0x0400], (0x2a5 >> 2) as u8);
        assert_eq!(fused, predecoded, "fused vs predecoded ADC poll");
        assert_eq!(predecoded, uncached, "predecoded vs uncached ADC poll");
    }

    #[test]
    fn adc_interrupt_vectors_after_conversion() {
        use crate::adc::{ADCSRA_ADDR, ADC_VECTOR, ADEN, ADIE, ADSC};
        // Vector slot 29 holds a jump to a break handler; main enables the
        // ADC interrupt, sets I, and spins.
        let mut m = Machine::new_atmega2560();
        let main = [
            Insn::Ldi {
                d: Reg::R24,
                k: ADEN | ADSC | ADIE | 0x02,
            },
            Insn::Sts {
                k: ADCSRA_ADDR,
                r: Reg::R24,
            },
            Insn::Bset {
                s: avr_core::sreg::I,
            },
            Insn::Rjmp { k: -1 },
        ];
        m.load_flash(ADC_VECTOR * 4, &encode_to_bytes(&[Insn::Break]).unwrap());
        m.load_flash(0x200, &encode_to_bytes(&main).unwrap());
        m.set_pc_bytes(0x200);
        let exit = m.run(10_000);
        assert!(
            matches!(exit, RunExit::Faulted(Fault::Break { .. })),
            "ADC completion must vector to slot 29: {exit:?}"
        );
        assert_eq!(m.interrupts_taken, 1);
    }

    #[test]
    fn call_ret_uses_three_byte_frames() {
        // 0: call 4 ; 2: break ; 3: (pad) ; 4: ret
        let mut m = machine_with(&[Insn::Call { k: 3 }, Insn::Break, Insn::Ret]);
        let sp0 = m.sp();
        assert_eq!(sp0, 0x21ff);
        m.step().unwrap(); // call
        assert_eq!(m.sp(), sp0 - 3, "ATmega2560 pushes 3 PC bytes");
        // Return address 2 sits big-endian at SP+1..SP+3.
        assert_eq!(m.peek_data(m.sp() + 1), 0);
        assert_eq!(m.peek_data(m.sp() + 2), 0);
        assert_eq!(m.peek_data(m.sp() + 3), 2);
        m.step().unwrap(); // ret
        assert_eq!(m.pc(), 2);
        assert_eq!(m.sp(), sp0);
    }

    #[test]
    fn stack_pointer_is_memory_mapped() {
        // The stk_move gadget primitive: out 0x3e/0x3d rewrites SP.
        let mut m = machine_with(&[
            Insn::Ldi {
                d: Reg::R29,
                k: 0x20,
            },
            Insn::Ldi {
                d: Reg::R28,
                k: 0x80,
            },
            Insn::Out {
                a: io::SPH,
                r: Reg::R29,
            },
            Insn::Out {
                a: io::SPL,
                r: Reg::R28,
            },
            Insn::Break,
        ]);
        m.run(100);
        assert_eq!(m.sp(), 0x2080);
    }

    #[test]
    fn registers_are_memory_mapped() {
        // sts into address 5 writes r5 — the paper leans on this.
        let mut m = machine_with(&[
            Insn::Ldi {
                d: Reg::R24,
                k: 0xab,
            },
            Insn::Sts {
                k: 0x0005,
                r: Reg::R24,
            },
            Insn::Break,
        ]);
        m.run(100);
        assert_eq!(m.reg(Reg::R5), 0xab);
    }

    #[test]
    fn invalid_opcode_faults() {
        let mut m = Machine::new_atmega2560();
        m.load_flash(0, &[0x01, 0x00]); // 0x0001 is reserved
        let exit = m.run(10);
        assert_eq!(
            exit,
            RunExit::Faulted(Fault::InvalidOpcode {
                addr: 0,
                word: 0x0001
            })
        );
        // Fault is sticky.
        assert!(m.step().is_err());
    }

    #[test]
    fn erased_flash_faults_immediately() {
        // 0xffff is a reserved encoding (sbrs with bit 3 set); executing
        // erased flash is exactly the "executing garbage" crash of §V-D.
        let mut m = Machine::new_atmega2560();
        let exit = m.run(600_000);
        assert_eq!(
            exit,
            RunExit::Faulted(Fault::InvalidOpcode {
                addr: 0,
                word: 0xffff
            })
        );
    }

    #[test]
    fn pc_runs_off_flash_end() {
        // A nop sled to the very end of flash runs the PC out of bounds.
        let mut m = Machine::new_atmega2560();
        let words = m.device().flash_words();
        m.load_flash(0, &vec![0u8; (words * 2) as usize]);
        m.set_pc_bytes(words * 2 - 2);
        let exit = m.run(10);
        assert_eq!(exit, RunExit::Faulted(Fault::PcOutOfBounds { pc: words }));
    }

    #[test]
    fn truncated_two_word_opcode_at_flash_edge() {
        // The first word of `call` in the very last flash word has no second
        // word to fetch: it must decode as an invalid opcode (width 1), not
        // as a call with a fabricated zero operand — with and without the
        // predecode cache.
        for predecode in [true, false] {
            let mut m = Machine::new_atmega2560();
            m.set_predecode(predecode);
            let last = m.device().flash_words() - 1;
            m.load_flash(last * 2, &0x940eu16.to_le_bytes()); // call, word 1 of 2
            m.set_pc_bytes(last * 2);
            let exit = m.run(10);
            assert_eq!(
                exit,
                RunExit::Faulted(Fault::InvalidOpcode {
                    addr: last * 2,
                    word: 0x940e,
                }),
                "predecode={predecode}"
            );
        }
    }

    #[test]
    fn branches_and_loops() {
        // Count r24 from 0 to 5: ldi r24,0 ; inc ; cpi 5 ; brne .-6 ; break
        let mut m = machine_with(&[
            Insn::Ldi { d: Reg::R24, k: 0 },
            Insn::Inc { d: Reg::R24 },
            Insn::Cpi { d: Reg::R24, k: 5 },
            Insn::Brbc { s: 1, k: -3 },
            Insn::Break,
        ]);
        m.run(1000);
        assert_eq!(m.reg(Reg::R24), 5);
    }

    #[test]
    fn skip_over_two_word_insn() {
        // sbrs r24,0 (r24=1 -> skip) over a jmp; lands on ldi.
        let mut m = machine_with(&[
            Insn::Ldi { d: Reg::R24, k: 1 },
            Insn::Sbrs { r: Reg::R24, b: 0 },
            Insn::Jmp { k: 0x100 },
            Insn::Ldi { d: Reg::R25, k: 7 },
            Insn::Break,
        ]);
        m.run(100);
        assert_eq!(m.reg(Reg::R25), 7);
    }

    #[test]
    fn uart_round_trip() {
        // Poll RXC, read UDR0, add 1, write UDR0.
        let mut m = machine_with(&[
            // in r24, UCSR0A(io 0xa0? no—use lds since 0xc0 is ext IO)
            Insn::Lds {
                d: Reg::R24,
                k: UCSR0A_ADDR,
            },
            Insn::Sbrs { r: Reg::R24, b: 7 },
            Insn::Rjmp { k: -3 },
            Insn::Lds {
                d: Reg::R24,
                k: UDR0_ADDR,
            },
            Insn::Inc { d: Reg::R24 },
            Insn::Sts {
                k: UDR0_ADDR,
                r: Reg::R24,
            },
            Insn::Break,
        ]);
        m.uart0.inject(&[41]);
        m.run(1000);
        assert_eq!(m.uart0.take_tx(), vec![42]);
    }

    #[test]
    fn heartbeat_toggles_recorded() {
        let mut m = machine_with(&[
            Insn::Ldi {
                d: Reg::R24,
                k: 1 << HEARTBEAT_BIT,
            },
            Insn::Sts {
                k: PORTB_ADDR,
                r: Reg::R24,
            },
            Insn::Ldi { d: Reg::R24, k: 0 },
            Insn::Sts {
                k: PORTB_ADDR,
                r: Reg::R24,
            },
            Insn::Break,
        ]);
        m.run(100);
        assert_eq!(m.heartbeat.toggles().len(), 2);
    }

    #[test]
    fn watchdog_fires_without_wdr() {
        let mut m = machine_with(&[Insn::Rjmp { k: -1 }]); // tight idle loop
        m.watchdog.enable(100, 0);
        let exit = m.run(10_000);
        assert_eq!(exit, RunExit::Faulted(Fault::WatchdogTimeout));

        let mut m = machine_with(&[Insn::Wdr, Insn::Rjmp { k: -2 }]);
        m.watchdog.enable(100, 0);
        let exit = m.run(10_000);
        assert_eq!(exit, RunExit::CyclesExhausted);
    }

    #[test]
    fn lpm_reads_flash() {
        let mut m = machine_with(&[
            Insn::Ldi {
                d: Reg::R30,
                k: 0x10,
            },
            Insn::Ldi {
                d: Reg::R31,
                k: 0x00,
            },
            Insn::Lpm {
                d: Reg::R24,
                post_inc: true,
            },
            Insn::Lpm {
                d: Reg::R25,
                post_inc: false,
            },
            Insn::Break,
        ]);
        m.load_flash(0x10, &[0xde, 0xad]);
        m.run(100);
        assert_eq!(m.reg(Reg::R24), 0xde);
        assert_eq!(m.reg(Reg::R25), 0xad);
        assert_eq!(m.reg_pair(Reg::R30), 0x11);
    }

    #[test]
    fn elpm_reads_high_flash() {
        let mut m = machine_with(&[
            Insn::Ldi { d: Reg::R24, k: 3 },
            Insn::Sts {
                k: RAMPZ_DATA,
                r: Reg::R24,
            },
            Insn::Ldi {
                d: Reg::R30,
                k: 0x00,
            },
            Insn::Ldi {
                d: Reg::R31,
                k: 0x00,
            },
            Insn::Elpm {
                d: Reg::R24,
                post_inc: false,
            },
            Insn::Break,
        ]);
        m.load_flash(0x30000, &[0x5a]);
        m.run(100);
        assert_eq!(m.reg(Reg::R24), 0x5a);
    }

    #[test]
    fn ijmp_uses_z() {
        let mut m = machine_with(&[
            Insn::Ldi { d: Reg::R30, k: 4 },
            Insn::Ldi { d: Reg::R31, k: 0 },
            Insn::Ijmp,
            Insn::Break, // skipped
            Insn::Ldi { d: Reg::R20, k: 9 },
            Insn::Break,
        ]);
        m.run(100);
        assert_eq!(m.reg(Reg::R20), 9);
    }

    #[test]
    fn breakpoints_pause_without_fault() {
        let mut m = machine_with(&[
            Insn::Ldi { d: Reg::R24, k: 1 },
            Insn::Ldi { d: Reg::R25, k: 2 },
            Insn::Break,
        ]);
        m.add_breakpoint(2);
        let exit = m.run(100);
        assert_eq!(exit, RunExit::Breakpoint { addr: 2 });
        assert_eq!(m.reg(Reg::R24), 1);
        assert_eq!(m.reg(Reg::R25), 0);
        m.remove_breakpoint(2);
        assert!(matches!(m.run(100), RunExit::Faulted(Fault::Break { .. })));
    }

    #[test]
    fn reset_preserves_sram() {
        let mut m = machine_with(&[
            Insn::Ldi {
                d: Reg::R24,
                k: 0x77,
            },
            Insn::Sts {
                k: 0x0500,
                r: Reg::R24,
            },
            Insn::Break,
        ]);
        m.run(100);
        assert!(m.fault().is_some());
        m.reset();
        assert!(m.fault().is_none());
        assert_eq!(m.pc(), 0);
        assert_eq!(m.sp(), 0x21ff);
        assert_eq!(m.peek_data(0x0500), 0x77, "SRAM survives reset");
    }

    #[test]
    fn push_pop_round_trip_pairs() {
        let mut m = machine_with(&[
            Insn::Ldi {
                d: Reg::R24,
                k: 0xaa,
            },
            Insn::Push { r: Reg::R24 },
            Insn::Pop { d: Reg::R0 },
            Insn::Break,
        ]);
        m.run(100);
        assert_eq!(m.reg(Reg::R0), 0xaa);
        assert_eq!(m.sp(), 0x21ff);
    }

    #[test]
    fn timer0_interrupt_vectors_and_returns() {
        use crate::timer::{TCCR0B_ADDR, TIMER0_OVF_VECTOR, TIMSK0_ADDR};
        // Vector table: slot 23 jumps to the ISR; main enables the timer
        // and interrupts, then spins incrementing r20. The ISR increments
        // a counter at 0x0400 and returns.
        let isr_word = 0x80u32; // ISR at byte 0x100
        let main_word = 0x100u32; // main at byte 0x200
        let mut m = Machine::new_atmega2560();
        let jmp_isr = encode_to_bytes(&[Insn::Jmp { k: isr_word }]).unwrap();
        m.load_flash(TIMER0_OVF_VECTOR * 4, &jmp_isr);
        m.load_flash(0, &encode_to_bytes(&[Insn::Jmp { k: main_word }]).unwrap());
        let isr = encode_to_bytes(&[
            Insn::Push { r: Reg::R24 },
            Insn::In {
                d: Reg::R24,
                a: io::SREG,
            },
            Insn::Push { r: Reg::R24 },
            Insn::Lds {
                d: Reg::R24,
                k: 0x0400,
            },
            Insn::Inc { d: Reg::R24 },
            Insn::Sts {
                k: 0x0400,
                r: Reg::R24,
            },
            Insn::Pop { d: Reg::R24 },
            Insn::Out {
                a: io::SREG,
                r: Reg::R24,
            },
            Insn::Pop { d: Reg::R24 },
            Insn::Reti,
        ])
        .unwrap();
        m.load_flash(isr_word * 2, &isr);
        let main = encode_to_bytes(&[
            Insn::Ldi { d: Reg::R24, k: 1 }, // prescale /1
            Insn::Sts {
                k: TCCR0B_ADDR,
                r: Reg::R24,
            },
            Insn::Ldi { d: Reg::R24, k: 1 }, // TOIE0
            Insn::Sts {
                k: TIMSK0_ADDR,
                r: Reg::R24,
            },
            Insn::Bset {
                s: avr_core::sreg::I,
            }, // sei
            // spin
            Insn::Inc { d: Reg::R20 },
            Insn::Rjmp { k: -2 },
        ])
        .unwrap();
        m.load_flash(main_word * 2, &main);
        let exit = m.run(3_000);
        assert_eq!(exit, RunExit::CyclesExhausted, "{:?}", m.fault());
        // ~3000 cycles at /1 prescale = ~11 overflows.
        let isr_count = m.peek_data(0x0400);
        assert!(
            (5..=15).contains(&isr_count),
            "ISR ran {isr_count} times in 3000 cycles"
        );
        // Main kept making progress between interrupts.
        assert!(m.reg(Reg::R20) > 100);
        // SP balanced (no leaked interrupt frames).
        assert_eq!(m.sp(), 0x21ff);
    }

    #[test]
    fn interrupts_masked_when_i_clear() {
        use crate::timer::{TCCR0B_ADDR, TIMSK0_ADDR};
        let mut m = machine_with(&[
            Insn::Ldi { d: Reg::R24, k: 1 },
            Insn::Sts {
                k: TCCR0B_ADDR,
                r: Reg::R24,
            },
            Insn::Sts {
                k: TIMSK0_ADDR,
                r: Reg::R24,
            },
            // I never set: spin.
            Insn::Inc { d: Reg::R20 },
            Insn::Rjmp { k: -2 },
        ]);
        m.run(3_000);
        assert!(m.fault().is_none());
        assert_eq!(m.sp(), 0x21ff, "no interrupt frames without sei");
        assert!(m.timer0.tifr & crate::timer::TOV0 != 0, "flag still pends");
    }

    #[test]
    fn eeprom_register_interface_via_instructions() {
        use crate::eeprom::{EEARL_ADDR, EECR_ADDR, EEDR_ADDR, EEMPE, EEPE, EERE};
        // Write 0x42 to EEPROM[5], read it back — through in/out as
        // firmware does it.
        let mut m = machine_with(&[
            Insn::Ldi { d: Reg::R24, k: 5 },
            Insn::Sts {
                k: EEARL_ADDR,
                r: Reg::R24,
            },
            Insn::Ldi {
                d: Reg::R24,
                k: 0x42,
            },
            Insn::Sts {
                k: EEDR_ADDR,
                r: Reg::R24,
            },
            Insn::Ldi {
                d: Reg::R24,
                k: EEMPE,
            },
            Insn::Sts {
                k: EECR_ADDR,
                r: Reg::R24,
            },
            Insn::Ldi {
                d: Reg::R24,
                k: EEPE,
            },
            Insn::Sts {
                k: EECR_ADDR,
                r: Reg::R24,
            },
            // Clear the data register, then read back.
            Insn::Ldi { d: Reg::R24, k: 0 },
            Insn::Sts {
                k: EEDR_ADDR,
                r: Reg::R24,
            },
            Insn::Ldi {
                d: Reg::R24,
                k: EERE,
            },
            Insn::Sts {
                k: EECR_ADDR,
                r: Reg::R24,
            },
            Insn::Lds {
                d: Reg::R20,
                k: EEDR_ADDR,
            },
            Insn::Break,
        ]);
        m.run(1_000);
        assert_eq!(m.eeprom.bytes()[5], 0x42);
        assert_eq!(m.reg(Reg::R20), 0x42);
        assert_eq!(m.eeprom.writes, 1);
    }

    #[test]
    fn trace_records_execution_path() {
        let mut m = machine_with(&[
            Insn::Ldi { d: Reg::R24, k: 1 },
            Insn::Call { k: 4 },
            Insn::Break,
            Insn::Ret, // word 4
        ]);
        m.enable_trace(16);
        m.run(100);
        let pcs: Vec<u32> = m.trace().unwrap().entries().iter().map(|e| e.0).collect();
        assert_eq!(pcs, vec![0, 2, 8, 6], "ldi, call, ret (at byte 8), break");
        assert_eq!(m.trace().unwrap().last_pc(), Some(6));
    }

    #[test]
    fn trace_ring_wraps() {
        let mut m = machine_with(&[Insn::Inc { d: Reg::R24 }, Insn::Rjmp { k: -2 }]);
        m.enable_trace(4);
        m.run(100);
        let entries = m.trace().unwrap().entries();
        assert_eq!(entries.len(), 4);
        // Only the loop's two addresses appear.
        assert!(entries.iter().all(|(pc, _)| *pc == 0 || *pc == 2));
        m.disable_trace();
        assert!(m.trace().is_none());
    }

    #[test]
    fn trace_standalone_wraparound_is_oldest_first() {
        // The public constructor lets forensics tooling build rings directly.
        let mut t = Trace::new(3);
        assert!(t.entries().is_empty());
        t.record(10, 100);
        t.record(20, 99);
        assert_eq!(t.entries(), vec![(10, 100), (20, 99)], "pre-wrap order");
        t.record(30, 98);
        t.record(40, 97); // evicts (10, 100)
        t.record(50, 96); // evicts (20, 99)
        assert_eq!(
            t.entries(),
            vec![(30, 98), (40, 97), (50, 96)],
            "oldest-first after overwrite"
        );
        assert_eq!(t.last_pc(), Some(50));
        // Capacity 0 is clamped to 1: always exactly the latest entry.
        let mut t1 = Trace::new(0);
        t1.record(1, 2);
        t1.record(3, 4);
        assert_eq!(t1.entries(), vec![(3, 4)]);
    }

    #[test]
    fn cpse_skips_two_word_instruction() {
        let mut m = machine_with(&[
            Insn::Ldi { d: Reg::R24, k: 7 },
            Insn::Ldi { d: Reg::R25, k: 7 },
            Insn::Cpse {
                d: Reg::R24,
                r: Reg::R25,
            },
            Insn::Sts {
                k: 0x0400,
                r: Reg::R24,
            }, // two words, skipped
            Insn::Ldi { d: Reg::R20, k: 1 },
            Insn::Break,
        ]);
        m.run(100);
        assert_eq!(m.peek_data(0x0400), 0, "sts skipped");
        assert_eq!(m.reg(Reg::R20), 1);
    }

    #[test]
    fn bst_bld_move_bits_through_t() {
        let mut m = machine_with(&[
            Insn::Ldi {
                d: Reg::R24,
                k: 0b0000_1000,
            },
            Insn::Bst { d: Reg::R24, b: 3 },
            Insn::Ldi { d: Reg::R25, k: 0 },
            Insn::Bld { d: Reg::R25, b: 6 },
            Insn::Break,
        ]);
        m.run(100);
        assert_eq!(m.reg(Reg::R25), 0b0100_0000);
    }

    #[test]
    fn sbic_skips_on_clear_io_bit() {
        // TIFR0 (io 0x15) starts clear -> sbic skips; after setting TOV0
        // via the timer, sbis skips instead.
        let mut m = machine_with(&[
            Insn::Sbic { a: 0x15, b: 0 },
            Insn::Ldi { d: Reg::R20, k: 1 }, // skipped
            Insn::Ldi { d: Reg::R21, k: 2 },
            Insn::Break,
        ]);
        m.run(100);
        assert_eq!(m.reg(Reg::R20), 0);
        assert_eq!(m.reg(Reg::R21), 2);
    }

    #[test]
    fn swap_and_com() {
        let mut m = machine_with(&[
            Insn::Ldi {
                d: Reg::R24,
                k: 0xa5,
            },
            Insn::Swap { d: Reg::R24 },
            Insn::Com { d: Reg::R24 },
            Insn::Break,
        ]);
        m.run(100);
        assert_eq!(m.reg(Reg::R24), !0x5au8);
    }

    #[test]
    fn cycle_accounting() {
        let mut m = machine_with(&[Insn::Nop, Insn::Call { k: 3 }, Insn::Ret]);
        m.step().unwrap();
        assert_eq!(m.cycles(), 1);
        m.step().unwrap();
        assert_eq!(m.cycles(), 6, "call on 2560 is 5 cycles");
        m.step().unwrap();
        assert_eq!(m.cycles(), 11, "ret on 2560 is 5 cycles");
    }
}
