//! Opt-in hot-PC histogram profiler.
//!
//! Attack forensics often start with "where was the CPU spending its time?"
//! — a tight polling loop in the firmware looks very different from a ROP
//! chain walking gadget epilogues scattered across flash. [`PcProfile`]
//! buckets every executed program-counter value into fixed-size flash bins
//! and reports the hottest ones.

/// Histogram of executed PC values over fixed-size flash buckets.
///
/// Enabled via `Machine::enable_profile`; one array index increment per
/// instruction while active, nothing when off.
#[derive(Debug, Clone)]
pub struct PcProfile {
    counts: Vec<u64>,
    bucket_bytes: u32,
    total: u64,
}

impl PcProfile {
    /// Histogram over `flash_bytes` of flash in `bucket_bytes` bins
    /// (clamped to ≥ 2 bytes, i.e. one instruction word).
    pub fn new(flash_bytes: u32, bucket_bytes: u32) -> Self {
        let bucket_bytes = bucket_bytes.max(2);
        let buckets = flash_bytes.div_ceil(bucket_bytes) as usize;
        PcProfile {
            counts: vec![0; buckets.max(1)],
            bucket_bytes,
            total: 0,
        }
    }

    /// Count one instruction fetched from byte address `pc_bytes`.
    pub fn record(&mut self, pc_bytes: u32) {
        let idx = (pc_bytes / self.bucket_bytes) as usize;
        if let Some(c) = self.counts.get_mut(idx) {
            *c += 1;
        }
        self.total += 1;
    }

    /// Bucket width in bytes.
    pub fn bucket_bytes(&self) -> u32 {
        self.bucket_bytes
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The `n` hottest buckets as `(start_byte_addr, count)`, hottest first.
    /// Empty buckets are never reported.
    pub fn hot(&self, n: usize) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u32 * self.bucket_bytes, c))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_and_hot_ranking() {
        let mut p = PcProfile::new(1024, 64);
        for _ in 0..5 {
            p.record(0); // bucket 0
        }
        for _ in 0..9 {
            p.record(130); // bucket 2
        }
        p.record(1023); // last bucket
        assert_eq!(p.total(), 15);
        assert_eq!(p.hot(2), vec![(128, 9), (0, 5)]);
        assert_eq!(p.hot(10).len(), 3, "empty buckets are skipped");
    }

    #[test]
    fn out_of_range_pc_counts_toward_total_only() {
        let mut p = PcProfile::new(64, 64);
        p.record(100_000);
        assert_eq!(p.total(), 1);
        assert!(p.hot(4).is_empty());
    }
}
