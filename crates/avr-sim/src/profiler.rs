//! Opt-in profilers: a hot-PC histogram and a symbol-attributed cycle
//! profiler.
//!
//! Attack forensics often start with "where was the CPU spending its time?"
//! — a tight polling loop in the firmware looks very different from a ROP
//! chain walking gadget epilogues scattered across flash. [`PcProfile`]
//! buckets every executed program-counter value into fixed-size flash bins
//! and reports the hottest ones. [`CycleProfile`] goes further: it follows
//! the call/return flow, maintains a shadow call stack of *symbols*, and
//! attributes every consumed cycle to the function executing it — both
//! exclusively (the frame on top) and inclusively (every frame on the
//! stack), with a folded-stacks text export any flamegraph renderer eats.

use avr_core::image::FirmwareImage;

/// Histogram of executed PC values over fixed-size flash buckets.
///
/// Enabled via `Machine::enable_profile`; one array index increment per
/// instruction while active, nothing when off.
#[derive(Debug, Clone)]
pub struct PcProfile {
    counts: Vec<u64>,
    bucket_bytes: u32,
    total: u64,
}

impl PcProfile {
    /// Histogram over `flash_bytes` of flash in `bucket_bytes` bins
    /// (clamped to ≥ 2 bytes, i.e. one instruction word).
    pub fn new(flash_bytes: u32, bucket_bytes: u32) -> Self {
        let bucket_bytes = bucket_bytes.max(2);
        let buckets = flash_bytes.div_ceil(bucket_bytes) as usize;
        PcProfile {
            counts: vec![0; buckets.max(1)],
            bucket_bytes,
            total: 0,
        }
    }

    /// Count one instruction fetched from byte address `pc_bytes`.
    pub fn record(&mut self, pc_bytes: u32) {
        let idx = (pc_bytes / self.bucket_bytes) as usize;
        if let Some(c) = self.counts.get_mut(idx) {
            *c += 1;
        }
        self.total += 1;
    }

    /// Bucket width in bytes.
    pub fn bucket_bytes(&self) -> u32 {
        self.bucket_bytes
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The `n` hottest buckets as `(start_byte_addr, count)`, hottest first.
    /// Empty buckets are never reported.
    pub fn hot(&self, n: usize) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u32 * self.bucket_bytes, c))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }
}

/// How control left the profiled instruction, as far as the shadow call
/// stack is concerned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Sequential, a branch, or anything else that stays in (or jumps
    /// laterally between) functions without pushing or popping a frame.
    Straight,
    /// `call`/`rcall`/`icall`/`eicall`: a frame is entered.
    Call,
    /// `ret`/`reti`: the top frame is left.
    Ret,
}

/// Shadow call-stack depth cap. Deeper pushes are counted, not stored, so
/// a runaway recursion (or a ROP chain faking returns) cannot grow the
/// profiler without bound; matching pops unwind the counter first.
const MAX_DEPTH: usize = 128;

/// Cap on distinct folded stacks kept; beyond it, cycles land in
/// [`CycleProfile::folded_dropped_cycles`] instead of new paths.
const MAX_FOLDED_PATHS: usize = 16_384;

/// Cycle totals for one function symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncCycles {
    /// Symbol name (`"[unknown]"` for PCs outside every symbol).
    pub name: String,
    /// Cycles with this function anywhere on the shadow stack (counted
    /// once per instruction even under recursion).
    pub inclusive: u64,
    /// Cycles with this function on top of the shadow stack.
    pub exclusive: u64,
}

/// Symbol-attributed cycle profiler.
///
/// Fed by `Machine::step` with `(pc, cycles, flow, next pc)` per retired
/// instruction, it keeps a shadow stack of symbol indices: calls push the
/// callee, returns pop, and an instruction whose symbol differs from the
/// top frame *replaces* it (a lateral move — tail jump, or a ROP chain
/// that never really "called" anything). That replacement rule is what
/// keeps attribution sane under the attacks this repo studies: gadgets
/// show up as the symbols they live in, not as mis-nested frames.
///
/// Interrupt dispatch pushes the vector's symbol like a call (`reti` pops
/// it), so ISR cycles nest under whatever they preempted.
#[derive(Debug, Clone)]
pub struct CycleProfile {
    /// `(start_byte, end_byte)` per symbol, sorted; index = symbol id.
    ranges: Vec<(u32, u32)>,
    names: Vec<String>,
    /// Virtual symbol id for PCs outside every range (== `names.len() - 1`).
    unknown: u16,
    stack: Vec<u16>,
    /// Frames notionally pushed beyond [`MAX_DEPTH`].
    truncated: u64,
    inclusive: Vec<u64>,
    exclusive: Vec<u64>,
    /// Epoch scratch for once-per-instruction inclusive marking.
    seen: Vec<u64>,
    epoch: u64,
    folded: std::collections::BTreeMap<Vec<u16>, u64>,
    folded_dropped: u64,
    total: u64,
    /// Last range hit, a one-entry cache (PCs are strongly local).
    last_hit: usize,
}

impl CycleProfile {
    /// Build a profiler over `image`'s symbol table (every sized symbol,
    /// not just functions — the vector table and data stubs catch strays).
    pub fn from_image(image: &FirmwareImage) -> Self {
        Self::from_symbols(
            image
                .symbols
                .iter()
                .filter(|s| s.size > 0)
                .map(|s| (s.name.clone(), s.addr, s.addr + s.size)),
        )
    }

    /// Build a profiler from raw `(name, start_byte, end_byte)` ranges.
    pub fn from_symbols(symbols: impl IntoIterator<Item = (String, u32, u32)>) -> Self {
        let mut syms: Vec<(u32, u32, String)> = symbols
            .into_iter()
            .map(|(name, start, end)| (start, end, name))
            .collect();
        syms.sort_by_key(|s| (s.0, s.1));
        let ranges = syms.iter().map(|&(s, e, _)| (s, e)).collect();
        let mut names: Vec<String> = syms.into_iter().map(|(_, _, n)| n).collect();
        assert!(names.len() < u16::MAX as usize, "symbol table too large");
        let unknown = names.len() as u16;
        names.push("[unknown]".to_string());
        let n = names.len();
        CycleProfile {
            ranges,
            names,
            unknown,
            stack: Vec::with_capacity(MAX_DEPTH),
            truncated: 0,
            inclusive: vec![0; n],
            exclusive: vec![0; n],
            seen: vec![0; n],
            epoch: 0,
            folded: std::collections::BTreeMap::new(),
            folded_dropped: 0,
            total: 0,
            last_hit: 0,
        }
    }

    fn resolve(&mut self, pc_bytes: u32) -> u16 {
        if let Some(&(s, e)) = self.ranges.get(self.last_hit) {
            if (s..e).contains(&pc_bytes) {
                return self.last_hit as u16;
            }
        }
        match self
            .ranges
            .partition_point(|&(start, _)| start <= pc_bytes)
            .checked_sub(1)
        {
            Some(i) if pc_bytes < self.ranges[i].1 => {
                self.last_hit = i;
                i as u16
            }
            _ => self.unknown,
        }
    }

    fn push(&mut self, sym: u16) {
        if self.stack.len() >= MAX_DEPTH {
            self.truncated += 1;
        } else {
            self.stack.push(sym);
        }
    }

    fn pop(&mut self) {
        if self.truncated > 0 {
            self.truncated -= 1;
        } else if self.stack.len() > 1 {
            // The root frame stays: a `ret` past the bottom (bare-metal
            // main never returns; ROP chains do) keeps attributing to
            // wherever the next instruction lands via the lateral rule.
            self.stack.pop();
        }
    }

    fn attribute(&mut self, delta: u64) {
        self.total += delta;
        let top = *self.stack.last().expect("stack never empty here") as usize;
        self.exclusive[top] += delta;
        self.epoch += 1;
        for &f in &self.stack {
            let f = f as usize;
            if self.seen[f] != self.epoch {
                self.seen[f] = self.epoch;
                self.inclusive[f] += delta;
            }
        }
        if let Some(c) = self.folded.get_mut(self.stack.as_slice()) {
            *c += delta;
        } else if self.folded.len() < MAX_FOLDED_PATHS {
            self.folded.insert(self.stack.clone(), delta);
        } else {
            self.folded_dropped += delta;
        }
    }

    /// Account one retired instruction: `delta` cycles at `pc_bytes`,
    /// leaving control at `next_pc_bytes` via `flow`.
    pub fn record(&mut self, pc_bytes: u32, delta: u64, flow: Flow, next_pc_bytes: u32) {
        let sym = self.resolve(pc_bytes);
        // Lateral sync: if execution sits in a different function than the
        // top frame claims (tail jump, ROP pivot, fall-through), rewrite
        // the top rather than inventing nesting.
        match self.stack.last_mut() {
            Some(top) if *top != sym => *top = sym,
            Some(_) => {}
            None => self.stack.push(sym),
        }
        self.attribute(delta);
        match flow {
            Flow::Call => {
                let callee = self.resolve(next_pc_bytes);
                self.push(callee);
            }
            Flow::Ret => self.pop(),
            Flow::Straight => {}
        }
    }

    /// Account an interrupt dispatch: `delta` cycles, vectoring to
    /// `vector_pc_bytes`. Pushes the vector's symbol like a call; the
    /// ISR's `reti` pops it.
    pub fn interrupt(&mut self, vector_pc_bytes: u32, delta: u64) {
        let sym = self.resolve(vector_pc_bytes);
        if self.stack.is_empty() {
            self.stack.push(sym);
        } else {
            self.push(sym);
        }
        self.attribute(delta);
    }

    /// Total cycles attributed.
    pub fn total_cycles(&self) -> u64 {
        self.total
    }

    /// Cycles that hit the folded-path cap instead of a stored path
    /// (0 unless the program produced more than
    /// [`MAX_FOLDED_PATHS`] distinct stacks).
    pub fn folded_dropped_cycles(&self) -> u64 {
        self.folded_dropped
    }

    /// Per-function totals, hottest exclusive first (ties by name);
    /// functions that never ran are omitted.
    pub fn functions(&self) -> Vec<FuncCycles> {
        let mut v: Vec<FuncCycles> = self
            .names
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.inclusive[i] > 0)
            .map(|(i, name)| FuncCycles {
                name: name.clone(),
                inclusive: self.inclusive[i],
                exclusive: self.exclusive[i],
            })
            .collect();
        v.sort_by(|a, b| b.exclusive.cmp(&a.exclusive).then(a.name.cmp(&b.name)));
        v
    }

    /// Folded-stacks export: one `frame;frame;... cycles` line per
    /// distinct stack, sorted, newline-terminated — the format flamegraph
    /// renderers consume directly.
    pub fn folded(&self) -> String {
        let mut lines: Vec<String> = self
            .folded
            .iter()
            .map(|(path, cycles)| {
                let frames: Vec<&str> = path
                    .iter()
                    .map(|&f| self.names[f as usize].as_str())
                    .collect();
                format!("{} {cycles}", frames.join(";"))
            })
            .collect();
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_and_hot_ranking() {
        let mut p = PcProfile::new(1024, 64);
        for _ in 0..5 {
            p.record(0); // bucket 0
        }
        for _ in 0..9 {
            p.record(130); // bucket 2
        }
        p.record(1023); // last bucket
        assert_eq!(p.total(), 15);
        assert_eq!(p.hot(2), vec![(128, 9), (0, 5)]);
        assert_eq!(p.hot(10).len(), 3, "empty buckets are skipped");
    }

    #[test]
    fn out_of_range_pc_counts_toward_total_only() {
        let mut p = PcProfile::new(64, 64);
        p.record(100_000);
        assert_eq!(p.total(), 1);
        assert!(p.hot(4).is_empty());
    }

    fn three_funcs() -> CycleProfile {
        CycleProfile::from_symbols([
            ("main".to_string(), 0, 10),
            ("leaf".to_string(), 10, 20),
            ("isr".to_string(), 20, 30),
        ])
    }

    #[test]
    fn call_ret_attribution_and_folded_export() {
        let mut p = three_funcs();
        p.record(0, 1, Flow::Straight, 2); // main
        p.record(2, 5, Flow::Call, 10); // call leaf: 5 cycles in main
        p.record(10, 1, Flow::Straight, 12); // leaf body
        p.record(12, 5, Flow::Ret, 4); // ret: 5 cycles in leaf
        p.record(4, 2, Flow::Straight, 6); // back in main
        assert_eq!(p.total_cycles(), 14);
        let f = p.functions();
        assert_eq!(f[0].name, "main");
        assert_eq!(f[0].exclusive, 8);
        assert_eq!(f[0].inclusive, 14, "main includes leaf's cycles");
        assert_eq!(f[1].name, "leaf");
        assert_eq!(f[1].exclusive, 6);
        assert_eq!(f[1].inclusive, 6);
        assert_eq!(p.folded(), "main 8\nmain;leaf 6\n");
    }

    #[test]
    fn interrupt_nests_and_reti_unwinds() {
        let mut p = three_funcs();
        p.record(0, 2, Flow::Straight, 2); // main
        p.interrupt(20, 5); // vector to isr
        p.record(20, 1, Flow::Straight, 22); // isr body
        p.record(22, 5, Flow::Ret, 2); // reti
        p.record(2, 1, Flow::Straight, 4); // main again
        let f = p.functions();
        assert_eq!(f[0].name, "isr");
        assert_eq!(f[0].exclusive, 11, "dispatch cycles belong to the ISR");
        assert_eq!(f[1].name, "main");
        assert_eq!(f[1].exclusive, 3);
        assert_eq!(f[1].inclusive, 14);
        assert!(p.folded().contains("main;isr 11"));
    }

    #[test]
    fn lateral_moves_replace_the_top_frame() {
        let mut p = three_funcs();
        p.record(0, 1, Flow::Straight, 12); // main, then a rjmp into leaf
        p.record(12, 3, Flow::Straight, 14); // ROP-style lateral: no call
        let f = p.functions();
        assert_eq!(f[0].name, "leaf");
        assert_eq!(f[0].exclusive, 3);
        assert_eq!(f[1].name, "main");
        assert_eq!(f[1].exclusive, 1);
        // The stack never deepened: two disjoint root paths.
        assert_eq!(p.folded(), "leaf 3\nmain 1\n");
    }

    #[test]
    fn unknown_pcs_and_deep_recursion_stay_bounded() {
        let mut p = three_funcs();
        p.record(500, 2, Flow::Straight, 502); // outside every symbol
        assert_eq!(p.functions()[0].name, "[unknown]");
        // Recurse far past MAX_DEPTH, then unwind: no panic, balanced.
        for _ in 0..(MAX_DEPTH + 50) {
            p.record(0, 1, Flow::Call, 0);
        }
        for _ in 0..(MAX_DEPTH + 50) {
            p.record(2, 1, Flow::Ret, 2);
        }
        p.record(4, 1, Flow::Straight, 6);
        assert_eq!(p.stack.len(), 1, "unwound to the root frame");
        // Inclusive counts main once per instruction despite recursion.
        let main = p
            .functions()
            .into_iter()
            .find(|f| f.name == "main")
            .unwrap();
        assert_eq!(main.inclusive as usize, 2 * (MAX_DEPTH + 50) + 1);
    }
}
