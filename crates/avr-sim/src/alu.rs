//! ALU flag semantics, implemented per the AVR Instruction Set Manual.
//!
//! Each helper returns `(result, sreg)` where `sreg` is the new status
//! register computed from the old one — callers never need per-flag logic.

use avr_core::sreg;

pub const C: u8 = 1 << sreg::C;
pub const Z: u8 = 1 << sreg::Z;
pub const N: u8 = 1 << sreg::N;
pub const V: u8 = 1 << sreg::V;
pub const S: u8 = 1 << sreg::S;
pub const H: u8 = 1 << sreg::H;
pub const T: u8 = 1 << sreg::T;

fn bit(v: u8, i: u8) -> bool {
    v & (1 << i) != 0
}

fn set(flags: &mut u8, mask: u8, cond: bool) {
    if cond {
        *flags |= mask;
    } else {
        *flags &= !mask;
    }
}

/// Derive S = N ^ V and Z/N from the result, in-place.
fn nzs(flags: &mut u8, r: u8) {
    set(flags, Z, r == 0);
    set(flags, N, bit(r, 7));
    let s = (*flags & N != 0) ^ (*flags & V != 0);
    set(flags, S, s);
}

/// `add`/`adc`: returns (result, new SREG).
pub fn add8(rd: u8, rr: u8, carry_in: bool, mut f: u8) -> (u8, u8) {
    let c = u16::from(carry_in);
    let full = u16::from(rd) + u16::from(rr) + c;
    let r = full as u8;
    set(&mut f, C, full > 0xff);
    set(&mut f, H, (rd & 0x0f) + (rr & 0x0f) + carry_in as u8 > 0x0f);
    set(
        &mut f,
        V,
        (bit(rd, 7) && bit(rr, 7) && !bit(r, 7)) || (!bit(rd, 7) && !bit(rr, 7) && bit(r, 7)),
    );
    nzs(&mut f, r);
    (r, f)
}

/// `sub`/`subi`/`cp`/`cpi` (and with `carry_in`, `sbc`/`sbci`/`cpc`).
///
/// `z_sticky` selects the SBC/CPC behaviour where Z can only be cleared.
pub fn sub8(rd: u8, rr: u8, carry_in: bool, z_sticky: bool, mut f: u8) -> (u8, u8) {
    let c = u16::from(carry_in);
    let full = u16::from(rd).wrapping_sub(u16::from(rr)).wrapping_sub(c);
    let r = full as u8;
    set(&mut f, C, u16::from(rr) + c > u16::from(rd));
    set(&mut f, H, (rr & 0x0f) + carry_in as u8 > (rd & 0x0f));
    set(
        &mut f,
        V,
        (bit(rd, 7) && !bit(rr, 7) && !bit(r, 7)) || (!bit(rd, 7) && bit(rr, 7) && bit(r, 7)),
    );
    let z_prev = f & Z != 0;
    nzs(&mut f, r);
    if z_sticky {
        set(&mut f, Z, r == 0 && z_prev);
        let s = (f & N != 0) ^ (f & V != 0);
        set(&mut f, S, s);
    }
    (r, f)
}

/// `and`/`andi`/`or`/`ori`/`eor`: logical result flags (V cleared).
pub fn logic8(r: u8, mut f: u8) -> (u8, u8) {
    set(&mut f, V, false);
    nzs(&mut f, r);
    (r, f)
}

/// `com`: one's complement. C is set.
pub fn com8(rd: u8, mut f: u8) -> (u8, u8) {
    let r = !rd;
    set(&mut f, C, true);
    set(&mut f, V, false);
    nzs(&mut f, r);
    (r, f)
}

/// `neg`: two's complement (flags as `sub 0, Rd`).
pub fn neg8(rd: u8, f: u8) -> (u8, u8) {
    sub8(0, rd, false, false, f)
}

/// `inc`: C and H untouched, V set on 0x7f -> 0x80.
pub fn inc8(rd: u8, mut f: u8) -> (u8, u8) {
    let r = rd.wrapping_add(1);
    set(&mut f, V, rd == 0x7f);
    nzs(&mut f, r);
    (r, f)
}

/// `dec`: C and H untouched, V set on 0x80 -> 0x7f.
pub fn dec8(rd: u8, mut f: u8) -> (u8, u8) {
    let r = rd.wrapping_sub(1);
    set(&mut f, V, rd == 0x80);
    nzs(&mut f, r);
    (r, f)
}

/// `lsr`: logical shift right.
pub fn lsr8(rd: u8, mut f: u8) -> (u8, u8) {
    let r = rd >> 1;
    set(&mut f, C, bit(rd, 0));
    set(&mut f, N, false);
    set(&mut f, Z, r == 0);
    let v = f & C != 0; // V = N ^ C = C since N = 0
    set(&mut f, V, v);
    let s = (f & N != 0) ^ (f & V != 0);
    set(&mut f, S, s);
    (r, f)
}

/// `ror`: rotate right through carry.
pub fn ror8(rd: u8, mut f: u8) -> (u8, u8) {
    let carry_in = f & C != 0;
    let r = (rd >> 1) | if carry_in { 0x80 } else { 0 };
    set(&mut f, C, bit(rd, 0));
    set(&mut f, Z, r == 0);
    set(&mut f, N, bit(r, 7));
    let v = (f & N != 0) ^ (f & C != 0);
    set(&mut f, V, v);
    let s = (f & N != 0) ^ (f & V != 0);
    set(&mut f, S, s);
    (r, f)
}

/// `asr`: arithmetic shift right (sign preserved).
pub fn asr8(rd: u8, mut f: u8) -> (u8, u8) {
    let r = (rd >> 1) | (rd & 0x80);
    set(&mut f, C, bit(rd, 0));
    set(&mut f, Z, r == 0);
    set(&mut f, N, bit(r, 7));
    let v = (f & N != 0) ^ (f & C != 0);
    set(&mut f, V, v);
    let s = (f & N != 0) ^ (f & V != 0);
    set(&mut f, S, s);
    (r, f)
}

/// `adiw`: 16-bit add of a 6-bit immediate.
pub fn adiw16(rd: u16, k: u8, mut f: u8) -> (u16, u8) {
    let r = rd.wrapping_add(u16::from(k));
    set(&mut f, C, !bit16(r, 15) && bit16(rd, 15));
    set(&mut f, V, !bit16(rd, 15) && bit16(r, 15));
    set(&mut f, Z, r == 0);
    set(&mut f, N, bit16(r, 15));
    let s = (f & N != 0) ^ (f & V != 0);
    set(&mut f, S, s);
    (r, f)
}

/// `sbiw`: 16-bit subtract of a 6-bit immediate.
pub fn sbiw16(rd: u16, k: u8, mut f: u8) -> (u16, u8) {
    let r = rd.wrapping_sub(u16::from(k));
    set(&mut f, C, bit16(r, 15) && !bit16(rd, 15));
    set(&mut f, V, bit16(rd, 15) && !bit16(r, 15));
    set(&mut f, Z, r == 0);
    set(&mut f, N, bit16(r, 15));
    let s = (f & N != 0) ^ (f & V != 0);
    set(&mut f, S, s);
    (r, f)
}

/// Unsigned, signed and mixed multiplies. Returns (16-bit product, SREG).
pub fn mul16(
    rd: u8,
    rr: u8,
    signed_d: bool,
    signed_r: bool,
    fractional: bool,
    mut f: u8,
) -> (u16, u8) {
    let a: i32 = if signed_d {
        i32::from(rd as i8)
    } else {
        i32::from(rd)
    };
    let b: i32 = if signed_r {
        i32::from(rr as i8)
    } else {
        i32::from(rr)
    };
    let p = (a * b) as u32 & 0xffff;
    let c = bit16(p as u16, 15);
    let r = if fractional {
        ((p << 1) & 0xffff) as u16
    } else {
        p as u16
    };
    set(&mut f, C, c);
    set(&mut f, Z, r == 0);
    (r, f)
}

fn bit16(v: u16, i: u8) -> bool {
    v & (1 << i) != 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_flags() {
        let (r, f) = add8(0x80, 0x80, false, 0);
        assert_eq!(r, 0);
        assert!(f & C != 0, "carry out");
        assert!(f & Z != 0);
        assert!(f & V != 0, "signed overflow: -128 + -128");
        assert!(f & N == 0);

        let (r, f) = add8(0x0f, 0x01, false, 0);
        assert_eq!(r, 0x10);
        assert!(f & H != 0, "half carry");
        assert!(f & C == 0);

        let (r, f) = add8(0xff, 0x00, true, 0);
        assert_eq!(r, 0);
        assert!(f & C != 0);
    }

    #[test]
    fn sub_flags() {
        let (r, f) = sub8(0x10, 0x20, false, false, 0);
        assert_eq!(r, 0xf0);
        assert!(f & C != 0, "borrow");
        assert!(f & N != 0);

        let (r, f) = sub8(0x80, 0x01, false, false, 0);
        assert_eq!(r, 0x7f);
        assert!(f & V != 0, "signed overflow: -128 - 1");

        // Z is sticky for sbc: stays clear if previously clear.
        let (_, f) = sub8(0x01, 0x01, false, true, 0);
        assert!(f & Z == 0, "sticky Z must not be set when previous Z clear");
        let (_, f) = sub8(0x01, 0x01, false, true, Z);
        assert!(f & Z != 0);
    }

    #[test]
    fn logic_clears_v() {
        let (_, f) = logic8(0x00, V | N);
        assert!(f & V == 0);
        assert!(f & Z != 0);
        assert!(f & N == 0);
    }

    #[test]
    fn inc_dec_preserve_carry() {
        let (_, f) = inc8(0xff, C);
        assert!(f & C != 0);
        let (r, f) = inc8(0x7f, 0);
        assert_eq!(r, 0x80);
        assert!(f & V != 0);
        let (r, f) = dec8(0x80, 0);
        assert_eq!(r, 0x7f);
        assert!(f & V != 0);
        let (_, f) = dec8(0x01, 0);
        assert!(f & Z != 0);
    }

    #[test]
    fn shifts() {
        let (r, f) = lsr8(0x01, 0);
        assert_eq!(r, 0);
        assert!(f & C != 0 && f & Z != 0);
        let (r, f) = ror8(0x01, C);
        assert_eq!(r, 0x80);
        assert!(f & C != 0 && f & N != 0);
        let (r, _) = asr8(0x82, 0);
        assert_eq!(r, 0xc1);
    }

    #[test]
    fn word_ops() {
        let (r, f) = adiw16(0xffff, 1, 0);
        assert_eq!(r, 0);
        assert!(f & C != 0 && f & Z != 0);
        let (r, f) = sbiw16(0x0000, 1, 0);
        assert_eq!(r, 0xffff);
        assert!(f & C != 0 && f & N != 0);
    }

    #[test]
    fn multiplies() {
        let (r, f) = mul16(200, 200, false, false, false, 0);
        assert_eq!(r, 40000);
        assert!(f & C != 0, "bit 15 of product");
        let (r, _) = mul16(0xff, 2, true, false, false, 0); // -1 * 2
        assert_eq!(r, 0xfffe);
        let (r, _) = mul16(0x40, 0x40, false, false, true, 0); // fmul 0.5*0.5
        assert_eq!(r, 0x2000);
        let (_, f) = mul16(0, 5, false, false, false, 0);
        assert!(f & Z != 0);
    }

    #[test]
    fn com_neg() {
        let (r, f) = com8(0x55, 0);
        assert_eq!(r, 0xaa);
        assert!(f & C != 0);
        let (r, f) = neg8(0x01, 0);
        assert_eq!(r, 0xff);
        assert!(f & C != 0);
        let (r, f) = neg8(0x80, 0);
        assert_eq!(r, 0x80);
        assert!(f & V != 0, "neg of -128 overflows");
        let (_, f) = neg8(0, 0);
        assert!(f & Z != 0 && f & C == 0);
    }
}
