//! Timer/Counter0 — the 8-bit timer whose overflow interrupt paces real
//! autopilot firmware (the paper's "numerous interrupts with strict
//! timetables", §III).
//!
//! Modelled subset: the clock-select bits of `TCCR0B`, the counter
//! `TCNT0`, the overflow flag `TOV0` in `TIFR0`, and the overflow
//! interrupt enable `TOIE0` in `TIMSK0`.

/// Data-space address of `TIFR0`.
pub const TIFR0_ADDR: u16 = 0x35;
/// Data-space address of `TCCR0B`.
pub const TCCR0B_ADDR: u16 = 0x45;
/// Data-space address of `TCNT0`.
pub const TCNT0_ADDR: u16 = 0x46;
/// Data-space address of `TIMSK0`.
pub const TIMSK0_ADDR: u16 = 0x6e;
/// `TOV0` / `TOIE0` bit.
pub const TOV0: u8 = 1 << 0;

/// Interrupt vector index of TIMER0 OVF on the ATmega2560.
pub const TIMER0_OVF_VECTOR: u32 = 23;

/// Timer/Counter0 state.
#[derive(Debug, Clone, Copy, Default)]
pub struct Timer0 {
    /// `TCNT0` counter value.
    pub tcnt: u8,
    /// `TCCR0B` clock-select field (we honour bits 2:0).
    pub tccr_b: u8,
    /// `TIMSK0` (bit 0 = TOIE0).
    pub timsk: u8,
    /// `TIFR0` (bit 0 = TOV0).
    pub tifr: u8,
    /// Accumulated CPU cycles not yet converted into timer ticks.
    residual: u64,
}

impl Timer0 {
    /// Prescaler divisor for the current clock-select bits; `None` when the
    /// timer is stopped.
    pub fn prescale(&self) -> Option<u64> {
        match self.tccr_b & 0x07 {
            1 => Some(1),
            2 => Some(8),
            3 => Some(64),
            4 => Some(256),
            5 => Some(1024),
            _ => None, // stopped (0) or external clock (6, 7 — unmodelled)
        }
    }

    /// Advance by `cycles` CPU cycles, setting `TOV0` on overflow.
    pub fn advance(&mut self, cycles: u64) {
        let Some(div) = self.prescale() else {
            return;
        };
        self.residual += cycles;
        let ticks = self.residual / div;
        self.residual %= div;
        if ticks == 0 {
            return;
        }
        let total = u64::from(self.tcnt) + ticks;
        if total > 0xff {
            self.tifr |= TOV0;
        }
        self.tcnt = (total & 0xff) as u8;
    }

    /// Whether an overflow interrupt is pending (flag set and enabled).
    pub fn irq_pending(&self) -> bool {
        self.tifr & TOV0 != 0 && self.timsk & TOV0 != 0
    }

    /// CPU cycles until [`advance`] would next set `TOV0`, given the current
    /// counter, prescaler and residual; `None` while the timer is stopped.
    /// An event horizon for hosts scheduling around the overflow interrupt —
    /// only a lower bound once firmware runs, since it may rewrite `TCNT0`
    /// or `TCCR0B` at any instruction.
    ///
    /// [`advance`]: Timer0::advance
    pub fn cycles_to_overflow(&self) -> Option<u64> {
        let div = self.prescale()?;
        let ticks = 256 - u64::from(self.tcnt);
        Some((ticks * div).saturating_sub(self.residual))
    }

    /// Acknowledge the overflow interrupt (hardware clears TOV0 on entry).
    pub fn ack(&mut self) {
        self.tifr &= !TOV0;
    }

    /// Snapshot of the timer registers, including the private prescaler
    /// residual (without it a restored timer would drift by up to one tick).
    pub fn state(&self) -> Timer0State {
        Timer0State {
            tcnt: self.tcnt,
            tccr_b: self.tccr_b,
            timsk: self.timsk,
            tifr: self.tifr,
            residual: self.residual,
        }
    }

    /// Replace the state with a snapshot taken by [`Timer0::state`].
    pub fn restore(&mut self, s: &Timer0State) {
        self.tcnt = s.tcnt;
        self.tccr_b = s.tccr_b;
        self.timsk = s.timsk;
        self.tifr = s.tifr;
        self.residual = s.residual;
    }
}

/// Serializable snapshot of a [`Timer0`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Timer0State {
    /// `TCNT0` counter value.
    pub tcnt: u8,
    /// `TCCR0B` clock-select field.
    pub tccr_b: u8,
    /// `TIMSK0`.
    pub timsk: u8,
    /// `TIFR0`.
    pub tifr: u8,
    /// CPU cycles accumulated toward the next prescaler tick.
    pub residual: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopped_timer_never_ticks() {
        let mut t = Timer0::default();
        t.advance(1_000_000);
        assert_eq!(t.tcnt, 0);
        assert_eq!(t.tifr & TOV0, 0);
    }

    #[test]
    fn div64_overflow_period() {
        let mut t = Timer0 {
            tccr_b: 3,
            ..Default::default()
        };
        // 256 ticks * 64 cycles = 16384 cycles per overflow.
        t.advance(16_383);
        assert_eq!(t.tifr & TOV0, 0);
        t.advance(64);
        assert_ne!(t.tifr & TOV0, 0);
    }

    #[test]
    fn residual_cycles_accumulate() {
        let mut t = Timer0 {
            tccr_b: 3,
            ..Default::default()
        };
        for _ in 0..64 {
            t.advance(1);
        }
        assert_eq!(t.tcnt, 1, "64 one-cycle steps = one div-64 tick");
    }

    #[test]
    fn cycles_to_overflow_predicts_advance() {
        let mut t = Timer0::default();
        assert_eq!(t.cycles_to_overflow(), None, "stopped timer has no event");
        t.tccr_b = 3; // div 64
        t.tcnt = 254;
        assert_eq!(t.cycles_to_overflow(), Some(2 * 64));
        t.advance(64); // one tick: residual consumed, tcnt -> 255
        assert_eq!(t.cycles_to_overflow(), Some(64));
        t.advance(63);
        assert_eq!(t.cycles_to_overflow(), Some(1), "residual counts down");
        assert_eq!(t.tifr & TOV0, 0);
        t.advance(1);
        assert_ne!(t.tifr & TOV0, 0, "overflow exactly at the horizon");
    }

    #[test]
    fn irq_gating() {
        let mut t = Timer0 {
            tccr_b: 1,
            ..Default::default()
        };
        t.advance(256);
        assert!(t.tifr & TOV0 != 0);
        assert!(!t.irq_pending(), "masked while TOIE0 clear");
        t.timsk = TOV0;
        assert!(t.irq_pending());
        t.ack();
        assert!(!t.irq_pending());
    }
}
