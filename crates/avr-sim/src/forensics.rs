//! Post-mortem crash forensics.
//!
//! When an application machine dies — invalid opcode, PC off the end of
//! flash, watchdog expiry — the interesting question is *how it got there*:
//! which function (or which attacker gadget) the final program counters
//! belonged to, and what return addresses were still sitting on the stack.
//! [`CrashReport::capture`] combines three artifacts into one answer:
//!
//! * the machine's [`Trace`](crate::Trace) ring buffer (recent `(pc, sp)`
//!   pairs),
//! * a window of the stack above the final stack pointer, scanned for
//!   plausible 3-byte big-endian return addresses (the layout
//!   `push_pc` leaves on an ATmega2560), and
//! * the firmware symbol map of the image that was actually running, so raw
//!   addresses become function names.
//!
//! Known attacker addresses (gadget entry points from a
//! [`GadgetMap`](../rop)) can be attached as *annotations*; any trace entry
//! or stack word that hits one is flagged, which is what turns "crashed in
//! `handle_param_set`" into "crashed returning through the attacker's
//! `stk_move` gadget".

use std::fmt::Write as _;

use avr_core::image::FirmwareImage;
use telemetry::{json_escape, Value};

use crate::machine::Machine;

/// How many trace entries the narrative keeps.
const TRAIL_LEN: usize = 24;
/// How many bytes of stack above SP are scanned for return addresses.
const STACK_WINDOW: usize = 96;

/// One attributed program-counter sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Attributed {
    /// Byte address in flash.
    pub addr: u32,
    /// Stack pointer at the time (trace entries) or the stack offset the
    /// candidate was found at (stack scan).
    pub sp: u16,
    /// Name of the containing function symbol, if the symbol map knows it.
    pub symbol: Option<String>,
    /// Offset of `addr` into `symbol`.
    pub offset: u32,
    /// Attacker annotation covering this address, if any.
    pub note: Option<String>,
}

/// A machine-readable post-mortem, with a human-readable rendering.
#[derive(Debug, Clone, Default)]
pub struct CrashReport {
    /// The fault that stopped the machine, if it is stopped.
    pub fault: Option<String>,
    /// Cycle count at capture time.
    pub cycle: u64,
    /// Instructions retired at capture time.
    pub insns_retired: u64,
    /// Final program counter (byte address).
    pub final_pc: u32,
    /// Final stack pointer.
    pub sp: u16,
    /// Recent execution trail from the trace ring, oldest first. Empty if
    /// tracing was off.
    pub trail: Vec<Attributed>,
    /// Plausible return addresses found on the stack above SP, in pop
    /// order (nearest to SP first). `sp` holds the stack address scanned.
    pub stack_returns: Vec<Attributed>,
    /// Where a pre-crash machine snapshot was written (a file path or other
    /// locator), if the host saved one. Set by the caller after `capture`;
    /// lets an operator reload the dying machine and single-step into the
    /// fault instead of reading tea leaves from the trail.
    pub snapshot_ref: Option<String>,
    /// First cycle at which this execution diverged from a reference run
    /// (the stock-vs-randomized bisect of the `snapshot` crate's replay
    /// layer). Set by the caller when a divergence analysis was performed.
    pub divergence_cycle: Option<u64>,
}

impl CrashReport {
    /// Capture a post-mortem from `machine`.
    ///
    /// `image` is the firmware that was running (its symbol map attributes
    /// addresses; pass the *randomized* image on a MAVR board, not the
    /// build layout). `annotations` are `(byte_addr, len, label)` ranges of
    /// known attacker interest — gadget entry points, injected buffers.
    pub fn capture(
        machine: &Machine,
        image: Option<&FirmwareImage>,
        annotations: &[(u32, u32, String)],
    ) -> CrashReport {
        let attribute = |addr: u32, sp: u16| -> Attributed {
            let sym = image.and_then(|i| i.symbol_containing(addr));
            let note = annotations
                .iter()
                .find(|(a, len, _)| addr >= *a && addr < *a + (*len).max(1))
                .map(|(_, _, label)| label.clone());
            Attributed {
                addr,
                sp,
                symbol: sym.map(|s| s.name.clone()),
                offset: sym.map(|s| addr - s.addr).unwrap_or(0),
                note,
            }
        };

        let trail: Vec<Attributed> = machine
            .trace()
            .map(|t| {
                let e = t.entries();
                let skip = e.len().saturating_sub(TRAIL_LEN);
                e[skip..]
                    .iter()
                    .map(|&(pc, sp)| attribute(pc, sp))
                    .collect()
            })
            .unwrap_or_default();

        // Scan the dead stack for 3-byte big-endian return addresses: any
        // word-aligned byte address inside the flashed code is a candidate.
        let sp = machine.sp();
        let ramend = machine.device().ramend();
        let code_end = image
            .map(|i| i.code_size())
            .unwrap_or(machine.device().flash_bytes);
        let mut stack_returns = Vec::new();
        let window = (u32::from(ramend).saturating_sub(u32::from(sp))) as usize;
        for off in 1..=window.min(STACK_WINDOW).saturating_sub(2) {
            let a = sp.wrapping_add(off as u16);
            let hi = machine.peek_data(a);
            let mid = machine.peek_data(a.wrapping_add(1));
            let lo = machine.peek_data(a.wrapping_add(2));
            let word = (u32::from(hi) << 16) | (u32::from(mid) << 8) | u32::from(lo);
            let byte_addr = word * 2;
            if word != 0 && byte_addr < code_end {
                stack_returns.push(attribute(byte_addr, a));
            }
        }

        CrashReport {
            fault: machine.fault().map(|f| f.to_string()),
            cycle: machine.cycles(),
            insns_retired: machine.insns_retired,
            final_pc: machine.pc_bytes(),
            sp,
            trail,
            stack_returns,
            snapshot_ref: None,
            divergence_cycle: None,
        }
    }

    /// The attacker annotations hit anywhere in the report (deduplicated,
    /// in first-seen order) — the "which gadget did it die in" summary.
    pub fn attacker_hits(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for a in self.trail.iter().chain(&self.stack_returns) {
            if let Some(n) = &a.note {
                if !seen.contains(&n.as_str()) {
                    seen.push(n.as_str());
                }
            }
        }
        seen
    }

    /// Render a human-readable crash narrative.
    pub fn narrative(&self) -> String {
        let mut out = String::new();
        match &self.fault {
            Some(f) => {
                let _ = writeln!(
                    out,
                    "machine dead: {f} at pc {:#06x}, sp {:#06x}, cycle {}",
                    self.final_pc, self.sp, self.cycle
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "machine alive at pc {:#06x}, sp {:#06x}, cycle {}",
                    self.final_pc, self.sp, self.cycle
                );
            }
        }
        let _ = writeln!(out, "  instructions retired: {}", self.insns_retired);
        if self.trail.is_empty() {
            let _ = writeln!(out, "  no execution trail (tracing was off)");
        } else {
            let _ = writeln!(out, "  last {} instructions:", self.trail.len());
            for a in &self.trail {
                let _ = writeln!(out, "    {}", describe(a, "pc"));
            }
        }
        if !self.stack_returns.is_empty() {
            let _ = writeln!(out, "  return addresses on the dead stack (nearest first):");
            for a in &self.stack_returns {
                let _ = writeln!(out, "    {}", describe(a, "ret"));
            }
        }
        let hits = self.attacker_hits();
        if !hits.is_empty() {
            let _ = writeln!(out, "  attacker code involved: {}", hits.join(", "));
        }
        if let Some(c) = self.divergence_cycle {
            let _ = writeln!(out, "  diverged from the reference run at cycle {c}");
        }
        if let Some(r) = &self.snapshot_ref {
            let _ = writeln!(out, "  pre-crash snapshot: {r}");
        }
        out
    }

    /// Render the report as one JSON object.
    pub fn to_json(&self) -> String {
        let attributed_json = |a: &Attributed| {
            let mut s = format!("{{\"addr\":{},\"sp\":{}", a.addr, a.sp);
            if let Some(sym) = &a.symbol {
                let _ = write!(
                    s,
                    ",\"symbol\":\"{}\",\"offset\":{}",
                    json_escape(sym),
                    a.offset
                );
            }
            if let Some(n) = &a.note {
                let _ = write!(s, ",\"note\":\"{}\"", json_escape(n));
            }
            s.push('}');
            s
        };
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"fault\":{},",
            self.fault
                .as_ref()
                .map(|f| Value::Str(f.clone()).to_json())
                .unwrap_or_else(|| "null".into())
        );
        let _ = write!(
            out,
            "\"cycle\":{},\"insns_retired\":{},\"final_pc\":{},\"sp\":{},",
            self.cycle, self.insns_retired, self.final_pc, self.sp
        );
        let join = |v: &[Attributed]| v.iter().map(attributed_json).collect::<Vec<_>>().join(",");
        let _ = write!(out, "\"trail\":[{}],", join(&self.trail));
        let _ = write!(out, "\"stack_returns\":[{}],", join(&self.stack_returns));
        let _ = write!(
            out,
            "\"attacker_hits\":[{}]",
            self.attacker_hits()
                .iter()
                .map(|h| format!("\"{}\"", json_escape(h)))
                .collect::<Vec<_>>()
                .join(",")
        );
        if let Some(c) = self.divergence_cycle {
            let _ = write!(out, ",\"divergence_cycle\":{c}");
        }
        if let Some(r) = &self.snapshot_ref {
            let _ = write!(out, ",\"snapshot_ref\":\"{}\"", json_escape(r));
        }
        out.push('}');
        out
    }
}

fn describe(a: &Attributed, what: &str) -> String {
    let mut s = format!("{what} {:#06x}", a.addr);
    match &a.symbol {
        Some(sym) if a.offset > 0 => {
            let _ = write!(s, " in {sym}+{:#x}", a.offset);
        }
        Some(sym) => {
            let _ = write!(s, " in {sym}");
        }
        None => s.push_str(" (no symbol)"),
    }
    if let Some(n) = &a.note {
        let _ = write!(s, "  <== {n}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use avr_core::encode::encode_to_bytes;
    use avr_core::Insn;

    #[test]
    fn capture_attributes_trace_and_stack() {
        // A program that calls into a function which then jumps off the
        // rails: rcall -> (in callee) jump to unprogrammed flash.
        let prog = encode_to_bytes(&[
            Insn::Rcall { k: 1 },      // 0x0000: call 0x0004
            Insn::Rjmp { k: -2 },      // 0x0002
            Insn::Jmp { k: 0x3_f000 }, // 0x0004: callee jumps into 0xff
        ])
        .unwrap();
        let mut m = Machine::new_atmega2560();
        m.load_flash(0, &prog);
        m.enable_trace(16);
        let exit = m.run(100);
        assert!(!exit.is_healthy());

        let report = CrashReport::capture(&m, None, &[(0x0004, 4, "gadget:test".to_string())]);
        assert!(report.fault.is_some());
        assert!(!report.trail.is_empty());
        // The callee's address is annotated in the trail.
        assert!(report
            .trail
            .iter()
            .any(|a| a.note.as_deref() == Some("gadget:test")));
        // The pushed return address (word 2 -> byte 4... return to 0x0002,
        // word 1) is found on the stack: candidate byte addr 2.
        assert!(
            report.stack_returns.iter().any(|r| r.addr == 2),
            "return to 0x0002 should be on the stack: {:?}",
            report.stack_returns
        );
        assert_eq!(report.attacker_hits(), vec!["gadget:test"]);
        let json = report.to_json();
        assert!(json.contains("\"attacker_hits\":[\"gadget:test\"]"));
        assert!(report.narrative().contains("attacker code involved"));
    }

    #[test]
    fn healthy_machine_reports_alive() {
        let mut m = Machine::new_atmega2560();
        m.load_flash(
            0,
            &encode_to_bytes(&[Insn::Nop, Insn::Rjmp { k: -2 }]).unwrap(),
        );
        m.run(10);
        let r = CrashReport::capture(&m, None, &[]);
        assert!(r.fault.is_none());
        assert!(r.narrative().starts_with("machine alive"));
        assert!(r.trail.is_empty(), "tracing off -> empty trail");
    }
}
