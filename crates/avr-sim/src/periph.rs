//! Peripheral models: UART, PORTB pin latch, PWM duty latches, heartbeat
//! GPIO, watchdog timer.

use std::collections::VecDeque;

/// Data-space address of `UCSR0A` (USART0 control/status A) on the
/// ATmega2560.
pub const UCSR0A_ADDR: u16 = 0xc0;
/// Data-space address of `UDR0` (USART0 data register).
pub const UDR0_ADDR: u16 = 0xc6;
/// `RXC0` bit of `UCSR0A`: receive complete.
pub const RXC0: u8 = 1 << 7;
/// `UDRE0` bit of `UCSR0A`: data register empty (we model an always-ready
/// transmitter).
pub const UDRE0: u8 = 1 << 5;

/// Data-space address of `PORTB` — the heartbeat pin lives here.
pub const PORTB_ADDR: u16 = 0x25;

/// Data-space address of `OCR0A` — modelled as the motor *thrust* duty
/// latch of the PWM output stage.
pub const OCR0A_ADDR: u16 = 0x47;
/// Data-space address of `OCR0B` — modelled as the motor *pitch-torque*
/// duty latch (centred at `0x80`).
pub const OCR0B_ADDR: u16 = 0x48;

/// The PORTB output latch: a real read/write register, not just a byte in
/// the data array. Firmware reads it back (read-modify-write heartbeat
/// toggles) and the heartbeat monitor observes every write one level up in
/// the machine. Like SRAM, the latch survives a CPU reset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortB {
    /// Current pin levels.
    pub value: u8,
}

impl PortB {
    /// Firmware-side read of `PORTB`.
    pub fn read(&self) -> u8 {
        self.value
    }

    /// Firmware-side write of `PORTB`; returns the new level for the
    /// heartbeat monitor to observe.
    pub fn write(&mut self, v: u8) -> u8 {
        self.value = v;
        v
    }
}

/// The PWM output stage: `OCR0A`/`OCR0B` duty-cycle latches on the Timer0
/// path, captured for the world model.
///
/// The latches are zero-order holds: the host (the flight-dynamics
/// integrator) samples them between run slices, so only the *last* write
/// before a sample boundary matters — writes need no cycle stamps, which
/// is what lets them fuse mid-block like ordinary stores.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Pwm {
    /// `OCR0A` duty latch (thrust, 0..=255).
    pub ocr0a: u8,
    /// `OCR0B` duty latch (pitch torque, centred at 0x80).
    pub ocr0b: u8,
}

impl Pwm {
    /// Firmware-side read of a duty latch.
    pub fn read(&self, addr: u16) -> u8 {
        match addr {
            OCR0A_ADDR => self.ocr0a,
            OCR0B_ADDR => self.ocr0b,
            _ => 0,
        }
    }

    /// Firmware-side write of a duty latch.
    pub fn write(&mut self, addr: u16, v: u8) {
        match addr {
            OCR0A_ADDR => self.ocr0a = v,
            OCR0B_ADDR => self.ocr0b = v,
            _ => {}
        }
    }

    /// Reset both latches (motors cut), as a CPU reset resets the timer's
    /// compare registers.
    pub fn reset(&mut self) {
        *self = Pwm::default();
    }

    /// Thrust duty cycle as a fraction in `[0, 1]`.
    pub fn thrust_duty(&self) -> f64 {
        f64::from(self.ocr0a) / 255.0
    }

    /// Pitch-torque duty as a signed fraction in `[-1, 1]`, centred at
    /// `0x80`.
    pub fn pitch_duty(&self) -> f64 {
        (f64::from(self.ocr0b) - 128.0) / 128.0
    }
}

/// A byte-oriented, polled UART.
///
/// The ground station (or the MAVR master, on the programming link) feeds
/// [`Uart::inject`]; firmware polls `UCSR0A.RXC0` and reads `UDR0`.
/// Transmitted bytes accumulate in [`Uart::take_tx`] for the host to drain.
#[derive(Debug, Default, Clone)]
pub struct Uart {
    rx: VecDeque<u8>,
    tx: Vec<u8>,
    /// Total bytes the firmware has consumed from the receive queue
    /// (monotonic; survives [`Uart::clear`]).
    pub rx_bytes: u64,
    /// Total bytes the firmware has transmitted (monotonic; survives
    /// [`Uart::take_tx`] and [`Uart::clear`]).
    pub tx_bytes: u64,
}

impl Uart {
    /// Queue bytes for the firmware to receive.
    pub fn inject(&mut self, bytes: &[u8]) {
        self.rx.extend(bytes.iter().copied());
    }

    /// Number of bytes waiting to be received.
    pub fn rx_pending(&self) -> usize {
        self.rx.len()
    }

    /// Status byte as seen at `UCSR0A`.
    pub fn status(&self) -> u8 {
        let mut s = UDRE0;
        if !self.rx.is_empty() {
            s |= RXC0;
        }
        s
    }

    /// Firmware-side read of `UDR0`. Reading with an empty queue returns 0,
    /// like reading the data register with no reception on real silicon.
    pub fn read_data(&mut self) -> u8 {
        match self.rx.pop_front() {
            Some(b) => {
                self.rx_bytes += 1;
                b
            }
            None => 0,
        }
    }

    /// Firmware-side write of `UDR0`.
    pub fn write_data(&mut self, byte: u8) {
        self.tx_bytes += 1;
        self.tx.push(byte);
    }

    /// Drain everything the firmware has transmitted so far.
    pub fn take_tx(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.tx)
    }

    /// Peek at the transmitted bytes without draining them.
    pub fn tx_buffer(&self) -> &[u8] {
        &self.tx
    }

    /// Discard any unread receive bytes (used on reset).
    pub fn clear(&mut self) {
        self.rx.clear();
        self.tx.clear();
    }

    /// Snapshot of the full UART state, including undrained buffers.
    pub fn state(&self) -> UartState {
        UartState {
            rx: self.rx.iter().copied().collect(),
            tx: self.tx.clone(),
            rx_bytes: self.rx_bytes,
            tx_bytes: self.tx_bytes,
        }
    }

    /// Replace the UART state with a snapshot taken by [`Uart::state`].
    pub fn restore(&mut self, s: &UartState) {
        self.rx = s.rx.iter().copied().collect();
        self.tx = s.tx.clone();
        self.rx_bytes = s.rx_bytes;
        self.tx_bytes = s.tx_bytes;
    }
}

/// Serializable snapshot of a [`Uart`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UartState {
    /// Unread receive queue, front first.
    pub rx: Vec<u8>,
    /// Undrained transmit buffer.
    pub tx: Vec<u8>,
    /// Lifetime bytes received by firmware.
    pub rx_bytes: u64,
    /// Lifetime bytes transmitted by firmware.
    pub tx_bytes: u64,
}

/// Records transitions of the heartbeat pin, with cycle timestamps.
///
/// The paper's master processor "listens to the application processor and
/// performs simple timing analysis to determine whether a failed attack has
/// occurred" (§V-A2). This model gives it the raw signal: every toggle of
/// the heartbeat bit on PORTB, timestamped in CPU cycles.
#[derive(Debug, Default, Clone)]
pub struct Heartbeat {
    toggles: Vec<u64>,
    last_level: bool,
}

impl Heartbeat {
    /// Observe a write of `value` to PORTB at time `cycle`.
    pub fn observe(&mut self, value: u8, bit: u8, cycle: u64) {
        let level = value & (1 << bit) != 0;
        if level != self.last_level {
            self.last_level = level;
            self.toggles.push(cycle);
        }
    }

    /// Cycle timestamps of every toggle seen so far.
    pub fn toggles(&self) -> &[u64] {
        &self.toggles
    }

    /// Cycle timestamp of the most recent toggle.
    pub fn last_toggle(&self) -> Option<u64> {
        self.toggles.last().copied()
    }

    /// Largest gap (in cycles) between consecutive toggles after `from`,
    /// including the gap from the final toggle to `now`. `None` if no toggle
    /// has been seen after `from`.
    pub fn max_gap(&self, from: u64, now: u64) -> Option<u64> {
        let mut prev = None;
        let mut max = 0u64;
        for &t in self.toggles.iter().filter(|&&t| t >= from) {
            if let Some(p) = prev {
                max = max.max(t - p);
            }
            prev = Some(t);
        }
        let last = prev?;
        Some(max.max(now.saturating_sub(last)))
    }

    /// Forget all history (used on reset).
    pub fn clear(&mut self) {
        self.toggles.clear();
        self.last_level = false;
    }

    /// Snapshot of the toggle history and current pin level.
    pub fn state(&self) -> HeartbeatState {
        HeartbeatState {
            toggles: self.toggles.clone(),
            last_level: self.last_level,
        }
    }

    /// Replace the state with a snapshot taken by [`Heartbeat::state`].
    pub fn restore(&mut self, s: &HeartbeatState) {
        self.toggles = s.toggles.clone();
        self.last_level = s.last_level;
    }
}

/// Serializable snapshot of a [`Heartbeat`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeartbeatState {
    /// Cycle timestamps of every toggle.
    pub toggles: Vec<u64>,
    /// Pin level after the last observed write.
    pub last_level: bool,
}

/// A watchdog timer. Disabled by default; when enabled, the machine faults
/// if `timeout` cycles pass without a `wdr` instruction.
#[derive(Debug, Clone, Copy, Default)]
pub struct Watchdog {
    timeout: Option<u64>,
    last_reset: u64,
}

impl Watchdog {
    /// Enable with the given timeout in cycles.
    pub fn enable(&mut self, timeout_cycles: u64, now: u64) {
        self.timeout = Some(timeout_cycles);
        self.last_reset = now;
    }

    /// Disable the watchdog.
    pub fn disable(&mut self) {
        self.timeout = None;
    }

    /// Called when the CPU executes `wdr`.
    pub fn pet(&mut self, now: u64) {
        self.last_reset = now;
    }

    /// Whether the watchdog has expired at time `now`.
    pub fn expired(&self, now: u64) -> bool {
        match self.timeout {
            Some(t) => now.saturating_sub(self.last_reset) > t,
            None => false,
        }
    }

    /// The last cycle at which the watchdog is still satisfied: [`expired`]
    /// is false for `now <= deadline()` and true from `deadline() + 1` on.
    /// `None` while disabled. The fast run loop uses this as an event
    /// horizon; a `wdr` only ever moves the deadline later, so a horizon
    /// computed before the pet is merely conservative.
    ///
    /// [`expired`]: Watchdog::expired
    pub fn deadline(&self) -> Option<u64> {
        self.timeout.map(|t| self.last_reset.saturating_add(t))
    }

    /// Snapshot of the watchdog configuration and pet time.
    pub fn state(&self) -> WatchdogState {
        WatchdogState {
            timeout: self.timeout,
            last_reset: self.last_reset,
        }
    }

    /// Replace the state with a snapshot taken by [`Watchdog::state`].
    pub fn restore(&mut self, s: &WatchdogState) {
        self.timeout = s.timeout;
        self.last_reset = s.last_reset;
    }
}

/// Serializable snapshot of a [`Watchdog`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WatchdogState {
    /// Timeout in cycles; `None` while disabled.
    pub timeout: Option<u64>,
    /// Cycle of the last `wdr` (or enable).
    pub last_reset: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uart_queues() {
        let mut u = Uart::default();
        assert_eq!(u.status() & RXC0, 0);
        assert_ne!(u.status() & UDRE0, 0);
        u.inject(&[1, 2, 3]);
        assert_ne!(u.status() & RXC0, 0);
        assert_eq!(u.read_data(), 1);
        assert_eq!(u.read_data(), 2);
        assert_eq!(u.rx_pending(), 1);
        u.write_data(9);
        u.write_data(8);
        assert_eq!(u.take_tx(), vec![9, 8]);
        assert!(u.take_tx().is_empty());
        assert_eq!(u.read_data(), 3);
        assert_eq!(u.read_data(), 0, "empty queue reads zero");
    }

    #[test]
    fn heartbeat_gap_analysis() {
        let mut hb = Heartbeat::default();
        hb.observe(0x20, 5, 100); // low -> high
        hb.observe(0x20, 5, 150); // no change
        hb.observe(0x00, 5, 200); // high -> low
        hb.observe(0x20, 5, 350);
        assert_eq!(hb.toggles(), &[100, 200, 350]);
        assert_eq!(hb.max_gap(0, 400), Some(150));
        // Silence after the last toggle dominates.
        assert_eq!(hb.max_gap(0, 1000), Some(650));
        assert_eq!(hb.max_gap(500, 1000), None);
    }

    #[test]
    fn watchdog_expiry() {
        let mut w = Watchdog::default();
        assert!(!w.expired(1_000_000));
        w.enable(100, 0);
        assert!(!w.expired(100));
        assert!(w.expired(101));
        w.pet(90);
        assert!(!w.expired(150));
        w.disable();
        assert!(!w.expired(u64::MAX));
    }

    #[test]
    fn heartbeat_max_gap_no_toggles() {
        let hb = Heartbeat::default();
        assert_eq!(hb.max_gap(0, 1_000_000), None, "silent pin has no gap");
    }

    #[test]
    fn heartbeat_max_gap_from_after_now() {
        let mut hb = Heartbeat::default();
        hb.observe(0x20, 5, 100);
        hb.observe(0x00, 5, 200);
        // `from` beyond every toggle (and beyond `now`): no observation
        // window, so no verdict — the master must not flag a miss here.
        assert_eq!(hb.max_gap(5000, 300), None);
        // Toggle inside the window but `now` earlier than the toggle: the
        // trailing gap saturates to zero rather than wrapping.
        assert_eq!(hb.max_gap(150, 100), Some(0));
    }

    #[test]
    fn heartbeat_max_gap_single_toggle() {
        let mut hb = Heartbeat::default();
        hb.observe(0x20, 5, 400);
        // One toggle: the only gap is toggle -> now.
        assert_eq!(hb.max_gap(0, 1000), Some(600));
        assert_eq!(hb.max_gap(0, 400), Some(0));
    }

    #[test]
    fn watchdog_enable_pet_timeout_sequencing() {
        let mut w = Watchdog::default();
        // Never enabled: never expires.
        w.pet(50);
        assert!(!w.expired(u64::MAX));
        // Enable at t=1000 with a 200-cycle budget.
        w.enable(200, 1000);
        assert!(!w.expired(1000), "fresh enable is not expired");
        assert!(!w.expired(1200), "boundary is inclusive");
        assert!(w.expired(1201));
        // A pet restarts the budget from the pet time.
        w.pet(1150);
        assert!(!w.expired(1350));
        assert!(w.expired(1351));
        // Re-enable resets the deadline even without a pet.
        w.enable(10, 2000);
        assert!(!w.expired(2010));
        assert!(w.expired(2011));
    }

    #[test]
    fn watchdog_deadline_tracks_expiry_boundary() {
        let mut w = Watchdog::default();
        assert_eq!(w.deadline(), None);
        w.enable(200, 1000);
        assert_eq!(w.deadline(), Some(1200));
        assert!(!w.expired(1200));
        assert!(w.expired(1201), "first expired cycle is deadline + 1");
        w.pet(1150);
        assert_eq!(w.deadline(), Some(1350), "pet moves the deadline later");
        w.disable();
        assert_eq!(w.deadline(), None);
    }

    #[test]
    fn portb_latch_reads_back_writes() {
        let mut p = PortB::default();
        assert_eq!(p.read(), 0);
        assert_eq!(p.write(0x25), 0x25);
        assert_eq!(p.read(), 0x25);
    }

    #[test]
    fn pwm_latches_and_duty_mapping() {
        let mut pwm = Pwm::default();
        pwm.write(OCR0A_ADDR, 255);
        pwm.write(OCR0B_ADDR, 128);
        assert_eq!(pwm.read(OCR0A_ADDR), 255);
        assert_eq!(pwm.thrust_duty(), 1.0);
        assert_eq!(pwm.pitch_duty(), 0.0, "0x80 is torque-neutral");
        pwm.write(OCR0B_ADDR, 0);
        assert_eq!(pwm.pitch_duty(), -1.0);
        pwm.reset();
        assert_eq!((pwm.ocr0a, pwm.ocr0b), (0, 0), "reset cuts the motors");
    }

    #[test]
    fn uart_counts_traffic() {
        let mut u = Uart::default();
        u.inject(&[1, 2]);
        u.read_data();
        u.read_data();
        u.read_data(); // empty read does not count
        u.write_data(7);
        u.take_tx();
        u.write_data(8);
        u.clear();
        assert_eq!(u.rx_bytes, 2);
        assert_eq!(u.tx_bytes, 2, "counters are monotonic across drains");
    }
}
