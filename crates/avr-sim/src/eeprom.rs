//! EEPROM with its register interface (EECR/EEDR/EEARL/EEARH).
//!
//! The paper's Fig. 1 lists the 4 KiB EEPROM as the persistent-configuration
//! store ("persistent storage of configuration settings … not included in
//! the data or program address space"). The synthetic autopilot uses it the
//! same way ArduPilot does: tuned parameters survive reboots — and notably
//! survive MAVR reflashes, since randomization touches program flash only.

/// Data-space address of `EECR` (control: EERE = bit 0, EEPE = bit 1,
/// EEMPE = bit 2).
pub const EECR_ADDR: u16 = 0x3f;
/// Data-space address of `EEDR` (data).
pub const EEDR_ADDR: u16 = 0x40;
/// Data-space address of `EEARL` (address low).
pub const EEARL_ADDR: u16 = 0x41;
/// Data-space address of `EEARH` (address high).
pub const EEARH_ADDR: u16 = 0x42;

/// `EERE`: EEPROM read enable.
pub const EERE: u8 = 1 << 0;
/// `EEPE`: EEPROM program enable.
pub const EEPE: u8 = 1 << 1;
/// `EEMPE`: EEPROM master program enable (must precede EEPE, as on real
/// silicon).
pub const EEMPE: u8 = 1 << 2;

/// The EEPROM array plus its I/O-register state machine.
#[derive(Debug, Clone)]
pub struct Eeprom {
    bytes: Vec<u8>,
    addr: u16,
    data: u8,
    /// Set by writing EEMPE; consumed by the next EEPE write.
    master_enable: bool,
    /// Set whenever a byte of the array changes; cleared by the snapshot
    /// layer after it captures a keyframe.
    dirty: bool,
    /// Total program operations (EEPROM endurance is 100k cycles; tracked
    /// like the flash-wear ledger).
    pub writes: u64,
}

impl Eeprom {
    /// An erased EEPROM of `size` bytes.
    pub fn new(size: usize) -> Self {
        Eeprom {
            bytes: vec![0xff; size],
            addr: 0,
            data: 0,
            master_enable: false,
            dirty: true,
            writes: 0,
        }
    }

    /// Register write dispatch.
    pub fn write_reg(&mut self, reg: u16, v: u8) {
        match reg {
            EEDR_ADDR => self.data = v,
            EEARL_ADDR => self.addr = (self.addr & 0xff00) | u16::from(v),
            EEARH_ADDR => self.addr = (self.addr & 0x00ff) | (u16::from(v) << 8),
            EECR_ADDR => {
                if v & EEMPE != 0 {
                    self.master_enable = true;
                }
                if v & EEPE != 0 {
                    // Program only when armed, as on hardware.
                    if self.master_enable {
                        if let Some(cell) = self.bytes.get_mut(self.addr as usize) {
                            *cell = self.data;
                            self.writes += 1;
                            self.dirty = true;
                        }
                    }
                    self.master_enable = false;
                }
                if v & EERE != 0 {
                    self.data = self.bytes.get(self.addr as usize).copied().unwrap_or(0xff);
                }
            }
            _ => {}
        }
    }

    /// Register read dispatch.
    pub fn read_reg(&self, reg: u16) -> u8 {
        match reg {
            EEDR_ADDR => self.data,
            EEARL_ADDR => (self.addr & 0xff) as u8,
            EEARH_ADDR => (self.addr >> 8) as u8,
            EECR_ADDR => 0, // operations complete instantly in the model
            _ => 0,
        }
    }

    /// Host view of the array.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Host-side write (e.g. factory provisioning).
    pub fn poke(&mut self, addr: u16, v: u8) {
        if let Some(cell) = self.bytes.get_mut(addr as usize) {
            *cell = v;
            self.dirty = true;
        }
    }

    /// Whether the array has changed since [`Eeprom::clear_dirty`].
    /// A fresh EEPROM starts dirty so the first keyframe captures it.
    pub fn dirty(&self) -> bool {
        self.dirty
    }

    /// Mark the array clean; done by the snapshot layer after a keyframe.
    pub fn clear_dirty(&mut self) {
        self.dirty = false;
    }

    /// Snapshot of the array and the register state machine.
    pub fn state(&self) -> EepromState {
        EepromState {
            bytes: self.bytes.clone(),
            addr: self.addr,
            data: self.data,
            master_enable: self.master_enable,
            writes: self.writes,
        }
    }

    /// Replace the state with a snapshot taken by [`Eeprom::state`].
    /// The restored array is considered dirty (the next delta captures it).
    pub fn restore(&mut self, s: &EepromState) {
        self.bytes = s.bytes.clone();
        self.addr = s.addr;
        self.data = s.data;
        self.master_enable = s.master_enable;
        self.writes = s.writes;
        self.dirty = true;
    }
}

/// Serializable snapshot of an [`Eeprom`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EepromState {
    /// The persistent array.
    pub bytes: Vec<u8>,
    /// `EEAR` address register.
    pub addr: u16,
    /// `EEDR` data register.
    pub data: u8,
    /// Whether `EEMPE` arming is pending.
    pub master_enable: bool,
    /// Lifetime program operations.
    pub writes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_requires_arming() {
        let mut e = Eeprom::new(16);
        e.write_reg(EEARL_ADDR, 3);
        e.write_reg(EEDR_ADDR, 0x5a);
        // EEPE without EEMPE: ignored.
        e.write_reg(EECR_ADDR, EEPE);
        assert_eq!(e.bytes()[3], 0xff);
        // Armed write lands.
        e.write_reg(EECR_ADDR, EEMPE);
        e.write_reg(EECR_ADDR, EEPE);
        assert_eq!(e.bytes()[3], 0x5a);
        assert_eq!(e.writes, 1);
        // Arming is consumed.
        e.write_reg(EEDR_ADDR, 0x11);
        e.write_reg(EECR_ADDR, EEPE);
        assert_eq!(e.bytes()[3], 0x5a);
    }

    #[test]
    fn read_back() {
        let mut e = Eeprom::new(16);
        e.poke(7, 0xab);
        e.write_reg(EEARL_ADDR, 7);
        e.write_reg(EECR_ADDR, EERE);
        assert_eq!(e.read_reg(EEDR_ADDR), 0xab);
    }

    #[test]
    fn sixteen_bit_addressing() {
        let mut e = Eeprom::new(4096);
        e.write_reg(EEARL_ADDR, 0x34);
        e.write_reg(EEARH_ADDR, 0x0f);
        e.write_reg(EEDR_ADDR, 0x77);
        e.write_reg(EECR_ADDR, EEMPE);
        e.write_reg(EECR_ADDR, EEPE);
        assert_eq!(e.bytes()[0x0f34], 0x77);
        assert_eq!(e.read_reg(EEARH_ADDR), 0x0f);
    }

    #[test]
    fn out_of_range_is_ignored() {
        let mut e = Eeprom::new(16);
        e.write_reg(EEARL_ADDR, 0xff);
        e.write_reg(EEDR_ADDR, 1);
        e.write_reg(EECR_ADDR, EEMPE);
        e.write_reg(EECR_ADDR, EEPE);
        assert_eq!(e.writes, 0);
        e.write_reg(EECR_ADDR, EERE);
        assert_eq!(e.read_reg(EEDR_ADDR), 0xff);
    }
}
