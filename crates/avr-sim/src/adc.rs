//! The successive-approximation ADC — the firmware's window onto the
//! physical world.
//!
//! Modelled subset of the ATmega2560 converter: channel select and left
//! adjust in `ADMUX`, enable/start/flag/interrupt-enable and the prescaler
//! bits in `ADCSRA`, and the `ADCL`/`ADCH` result pair. Conversions take
//! real time — 13 ADC clocks (25 for the first after enabling), each ADC
//! clock a prescaled CPU clock — so firmware observes the same
//! start-poll-read latency it would on silicon, and the block-fused run
//! loop has to treat an armed conversion as an event horizon exactly like
//! a Timer0 overflow.
//!
//! The *analog inputs* are host-side state: the world model (or a test)
//! writes [`Adc::channels`] and the next conversion latches from them.
//! Like every peripheral, the ADC advances in lockstep with CPU cycles via
//! [`Adc::advance`], which is linear — advancing by `a` then `b` is
//! identical to advancing by `a + b` — so batched (block-fused) and
//! per-instruction execution see bit-identical conversions.

/// Data-space address of `ADCL` (result low byte).
pub const ADCL_ADDR: u16 = 0x78;
/// Data-space address of `ADCH` (result high byte).
pub const ADCH_ADDR: u16 = 0x79;
/// Data-space address of `ADCSRA` (control/status A).
pub const ADCSRA_ADDR: u16 = 0x7a;
/// Data-space address of `ADCSRB` (control/status B — stored, not decoded).
pub const ADCSRB_ADDR: u16 = 0x7b;
/// Data-space address of `ADMUX` (multiplexer select).
pub const ADMUX_ADDR: u16 = 0x7c;

/// `ADEN` bit of `ADCSRA`: ADC enable.
pub const ADEN: u8 = 1 << 7;
/// `ADSC` bit of `ADCSRA`: start conversion (reads 1 while converting).
pub const ADSC: u8 = 1 << 6;
/// `ADIF` bit of `ADCSRA`: conversion-complete flag (write 1 to clear).
pub const ADIF: u8 = 1 << 4;
/// `ADIE` bit of `ADCSRA`: conversion-complete interrupt enable.
pub const ADIE: u8 = 1 << 3;
/// `ADLAR` bit of `ADMUX`: left-adjust the 10-bit result.
pub const ADLAR: u8 = 1 << 5;

/// Interrupt vector index of ADC conversion complete on the ATmega2560.
pub const ADC_VECTOR: u32 = 29;

/// Modelled analog input channels (`ADMUX` MUX2:0; the upper mux bits and
/// the differential modes are unmodelled and read as channel 0..=7).
pub const ADC_CHANNELS: usize = 8;

/// ADC clocks per normal conversion (datasheet: 13).
const CONVERSION_CLOCKS: u64 = 13;
/// ADC clocks for the first conversion after `ADEN` (datasheet: 25).
const FIRST_CONVERSION_CLOCKS: u64 = 25;

/// The ADC peripheral.
#[derive(Debug, Clone)]
pub struct Adc {
    /// `ADMUX`: channel select (bits 2:0 honoured) and `ADLAR`.
    pub admux: u8,
    /// `ADCSRA` control bits as written (`ADEN`, `ADIE`, prescaler);
    /// `ADSC`/`ADIF` are reconstructed from the conversion state on read.
    control: u8,
    /// `ADCSRB`: stored and read back, otherwise unmodelled.
    pub adcsrb: u8,
    /// Latched 10-bit result, already `ADLAR`-adjusted at latch time.
    data: u16,
    /// CPU cycles until the in-flight conversion completes.
    converting: Option<u64>,
    /// Conversion-complete flag (`ADIF`).
    adif: bool,
    /// The next conversion is the extended first-after-enable one.
    first: bool,
    /// Host-side analog inputs, one 10-bit sample per channel. Written by
    /// the world model; latched into `data` when a conversion completes.
    pub channels: [u16; ADC_CHANNELS],
}

impl Default for Adc {
    fn default() -> Self {
        Adc {
            admux: 0,
            control: 0,
            adcsrb: 0,
            data: 0,
            converting: None,
            adif: false,
            first: true,
            channels: [0; ADC_CHANNELS],
        }
    }
}

impl Adc {
    /// CPU cycles per ADC clock for the current `ADPS2:0` bits. The
    /// datasheet maps `ADPS` 0 and 1 both to division by 2.
    fn prescale(&self) -> u64 {
        match self.control & 0x07 {
            0 | 1 => 2,
            n => 1u64 << n,
        }
    }

    /// Advance by `cycles` CPU cycles, completing an in-flight conversion
    /// when its time is up. Linear: any partition of a cycle span produces
    /// the same completion point and latched sample.
    pub fn advance(&mut self, cycles: u64) {
        let Some(left) = self.converting else {
            return;
        };
        if cycles < left {
            self.converting = Some(left - cycles);
            return;
        }
        self.converting = None;
        self.first = false;
        self.adif = true;
        let sample = self.channels[usize::from(self.admux & 0x07)] & 0x03ff;
        self.data = if self.admux & ADLAR != 0 {
            sample << 6
        } else {
            sample
        };
    }

    /// CPU cycles until the in-flight conversion completes; `None` while
    /// idle. The fast run loop's event horizon for an armed conversion.
    pub fn cycles_to_done(&self) -> Option<u64> {
        self.converting
    }

    /// Whether a conversion-complete interrupt is pending (flag set and
    /// `ADIE` enabled).
    pub fn irq_pending(&self) -> bool {
        self.adif && self.control & ADIE != 0
    }

    /// Whether conversion-complete delivery is armed: a conversion is in
    /// flight and `ADIE` is set (the caller checks the global I flag).
    pub fn irq_armed(&self) -> bool {
        self.converting.is_some() && self.control & ADIE != 0
    }

    /// Acknowledge the interrupt (hardware clears `ADIF` on vector entry).
    pub fn ack(&mut self) {
        self.adif = false;
    }

    /// Firmware-side read of an ADC register.
    pub fn read(&self, addr: u16) -> u8 {
        match addr {
            ADCL_ADDR => (self.data & 0xff) as u8,
            ADCH_ADDR => (self.data >> 8) as u8,
            ADCSRA_ADDR => {
                let mut v = self.control;
                if self.converting.is_some() {
                    v |= ADSC;
                }
                if self.adif {
                    v |= ADIF;
                }
                v
            }
            ADCSRB_ADDR => self.adcsrb,
            ADMUX_ADDR => self.admux,
            _ => 0,
        }
    }

    /// Firmware-side write of an ADC register.
    pub fn write(&mut self, addr: u16, v: u8) {
        match addr {
            ADMUX_ADDR => self.admux = v,
            ADCSRB_ADDR => self.adcsrb = v,
            ADCSRA_ADDR => {
                self.control = v & (ADEN | ADIE | 0x07);
                // Writing 1 to ADIF clears it, as on real hardware.
                if v & ADIF != 0 {
                    self.adif = false;
                }
                if v & ADEN == 0 {
                    // Disabling the ADC aborts a conversion and re-arms the
                    // extended first conversion.
                    self.converting = None;
                    self.first = true;
                } else if v & ADSC != 0 && self.converting.is_none() {
                    let clocks = if self.first {
                        FIRST_CONVERSION_CLOCKS
                    } else {
                        CONVERSION_CLOCKS
                    };
                    self.converting = Some(clocks * self.prescale());
                }
            }
            // The result registers are read-only.
            _ => {}
        }
    }

    /// Reset the register interface (CPU reset resets the peripheral) while
    /// keeping the host-side analog inputs: the world does not reboot with
    /// the autopilot.
    pub fn reset(&mut self) {
        let channels = self.channels;
        *self = Adc {
            channels,
            ..Adc::default()
        };
    }

    /// Snapshot of the full ADC state, including the in-flight conversion
    /// countdown and the host-side channel inputs.
    pub fn state(&self) -> AdcState {
        AdcState {
            admux: self.admux,
            control: self.control,
            adcsrb: self.adcsrb,
            data: self.data,
            converting: self.converting,
            adif: self.adif,
            first: self.first,
            channels: self.channels,
        }
    }

    /// Replace the state with a snapshot taken by [`Adc::state`].
    pub fn restore(&mut self, s: &AdcState) {
        self.admux = s.admux;
        self.control = s.control;
        self.adcsrb = s.adcsrb;
        self.data = s.data;
        self.converting = s.converting;
        self.adif = s.adif;
        self.first = s.first;
        self.channels = s.channels;
    }
}

/// Serializable snapshot of an [`Adc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdcState {
    /// `ADMUX`.
    pub admux: u8,
    /// `ADCSRA` control bits (`ADEN`, `ADIE`, prescaler).
    pub control: u8,
    /// `ADCSRB`.
    pub adcsrb: u8,
    /// Latched result.
    pub data: u16,
    /// CPU cycles until the in-flight conversion completes.
    pub converting: Option<u64>,
    /// `ADIF` flag.
    pub adif: bool,
    /// Next conversion is the extended first one.
    pub first: bool,
    /// Host-side analog inputs.
    pub channels: [u16; ADC_CHANNELS],
}

impl Default for AdcState {
    fn default() -> Self {
        Adc::default().state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(adc: &mut Adc) {
        adc.write(ADCSRA_ADDR, ADEN | ADSC | 0x02); // prescale /4
    }

    #[test]
    fn conversion_takes_prescaled_clocks() {
        let mut adc = Adc::default();
        adc.channels[0] = 0x155;
        start(&mut adc);
        // First conversion: 25 ADC clocks at /4 = 100 cycles.
        assert_eq!(adc.cycles_to_done(), Some(100));
        adc.advance(99);
        assert_ne!(adc.read(ADCSRA_ADDR) & ADSC, 0, "still converting");
        assert_eq!(adc.read(ADCSRA_ADDR) & ADIF, 0);
        adc.advance(1);
        assert_eq!(adc.read(ADCSRA_ADDR) & ADSC, 0);
        assert_ne!(adc.read(ADCSRA_ADDR) & ADIF, 0);
        assert_eq!(adc.read(ADCL_ADDR), 0x55);
        assert_eq!(adc.read(ADCH_ADDR), 0x01);
        // Second conversion: 13 clocks = 52 cycles.
        start(&mut adc);
        assert_eq!(adc.cycles_to_done(), Some(52));
    }

    #[test]
    fn advance_is_linear() {
        let mut a = Adc::default();
        let mut b = Adc::default();
        a.channels[3] = 0x3ff;
        b.channels[3] = 0x3ff;
        a.write(ADMUX_ADDR, 3);
        b.write(ADMUX_ADDR, 3);
        start(&mut a);
        start(&mut b);
        a.advance(100);
        for _ in 0..100 {
            b.advance(1);
        }
        assert_eq!(a.state(), b.state());
    }

    #[test]
    fn adlar_left_adjusts_for_eight_bit_reads() {
        let mut adc = Adc::default();
        adc.channels[1] = 0x2a5; // 10-bit sample
        adc.write(ADMUX_ADDR, ADLAR | 1);
        start(&mut adc);
        adc.advance(100);
        // Top 8 of 10 bits land in ADCH.
        assert_eq!(adc.read(ADCH_ADDR), (0x2a5 >> 2) as u8);
    }

    #[test]
    fn irq_gating_and_flag_clear() {
        let mut adc = Adc::default();
        adc.write(ADCSRA_ADDR, ADEN | ADSC | ADIE | 0x02);
        assert!(adc.irq_armed());
        assert!(!adc.irq_pending());
        adc.advance(100);
        assert!(adc.irq_pending());
        assert!(!adc.irq_armed(), "nothing in flight after completion");
        adc.ack();
        assert!(!adc.irq_pending());
        // Flag also clears by writing 1 to ADIF.
        adc.write(ADCSRA_ADDR, ADEN | ADSC | 0x02);
        adc.advance(52);
        assert_ne!(adc.read(ADCSRA_ADDR) & ADIF, 0);
        adc.write(ADCSRA_ADDR, ADEN | ADIF | 0x02);
        assert_eq!(adc.read(ADCSRA_ADDR) & ADIF, 0);
    }

    #[test]
    fn disable_aborts_and_rearms_first_conversion() {
        let mut adc = Adc::default();
        start(&mut adc);
        adc.advance(100);
        start(&mut adc);
        assert_eq!(adc.cycles_to_done(), Some(52));
        adc.write(ADCSRA_ADDR, 0);
        assert_eq!(adc.cycles_to_done(), None);
        start(&mut adc);
        assert_eq!(adc.cycles_to_done(), Some(100), "first conversion again");
    }

    #[test]
    fn reset_keeps_channels() {
        let mut adc = Adc::default();
        adc.channels[2] = 0x123;
        start(&mut adc);
        adc.reset();
        assert_eq!(adc.cycles_to_done(), None);
        assert_eq!(adc.read(ADCSRA_ADDR), 0);
        assert_eq!(adc.channels[2], 0x123, "analog world survives a reboot");
    }

    #[test]
    fn sample_clamps_to_ten_bits() {
        let mut adc = Adc::default();
        adc.channels[0] = 0xffff;
        start(&mut adc);
        adc.advance(100);
        assert_eq!(adc.read(ADCL_ADDR), 0xff);
        assert_eq!(adc.read(ADCH_ADDR), 0x03);
    }
}
