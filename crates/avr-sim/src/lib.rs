//! Cycle-accurate ATmega2560 machine simulator for the MAVR reproduction.
//!
//! This crate is the "hardware" the paper's attacks run on: a Harvard
//! architecture machine with
//!
//! * word-addressed program flash that the program counter can never leave,
//! * a single linear data space in which the 32 general-purpose registers,
//!   the I/O registers (including the stack pointer at `0x3d`/`0x3e` and
//!   SREG at `0x3f`) and physical SRAM are all memory mapped — the property
//!   the paper's `stk_move` and `write_mem_gadget` gadgets depend on,
//! * a polled UART carrying MAVLink traffic from the (possibly malicious)
//!   ground station,
//! * a heartbeat GPIO pin the MAVR master processor watches to detect the
//!   "executing garbage" aftermath of a failed ROP attempt, and
//! * fault detection: executing a reserved opcode, running the PC out of
//!   flash, or a watchdog expiry stops the machine with a [`Fault`].
//!
//! # Example
//!
//! ```
//! use avr_core::{encode::encode_to_bytes, Insn, Reg};
//! use avr_sim::Machine;
//!
//! // ldi r24, 42 ; sts 0x0400, r24 ; break
//! let prog = encode_to_bytes(&[
//!     Insn::Ldi { d: Reg::R24, k: 42 },
//!     Insn::Sts { k: 0x0400, r: Reg::R24 },
//!     Insn::Break,
//! ])
//! .unwrap();
//! let mut m = Machine::new_atmega2560();
//! m.load_flash(0, &prog);
//! m.run(100);
//! assert_eq!(m.read_data(0x0400), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adc;
mod alu;
mod blockcache;
pub mod eeprom;
mod fault;
pub mod forensics;
mod machine;
mod periph;
pub mod profiler;
pub mod timer;

pub use adc::{Adc, AdcState};
pub use blockcache::BlockStats;
pub use eeprom::{Eeprom, EepromState};
pub use fault::{Fault, RunExit};
pub use forensics::CrashReport;
pub use machine::{Machine, MachineState, SimCounters, Trace, DIRTY_PAGE_SIZE, HEARTBEAT_BIT};
pub use periph::{
    Heartbeat, HeartbeatState, PortB, Pwm, Uart, UartState, Watchdog, WatchdogState, PORTB_ADDR,
};
pub use profiler::{CycleProfile, Flow, FuncCycles, PcProfile};
pub use timer::{Timer0, Timer0State};
