//! Execution faults — the observable failure modes of a (possibly attacked)
//! application processor.

use std::fmt;

/// Why the machine stopped abnormally.
///
/// The paper's security argument (§V-D) rests on a failed ROP attempt
/// "executing garbage bytes", which on a real part manifests as one of these
/// conditions. The MAVR master processor cannot see the fault directly — it
/// infers it from the missing heartbeat — but the simulator reports the
/// precise cause for the test suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The PC reached a word that decodes to no AVRe+ instruction.
    InvalidOpcode {
        /// Byte address of the offending word.
        addr: u32,
        /// The undecodable word.
        word: u16,
    },
    /// The PC left the program flash.
    PcOutOfBounds {
        /// The out-of-range PC, in words.
        pc: u32,
    },
    /// A `break` instruction was executed (on real silicon this stops the
    /// CPU for the on-chip debugger; the simulator treats it as a halt).
    Break {
        /// Byte address of the `break`.
        addr: u32,
    },
    /// A stack push or pop ran outside the data space.
    StackOutOfBounds {
        /// Stack pointer value at the time of the access.
        sp: u16,
    },
    /// A load/store touched an address outside the data space.
    DataOutOfBounds {
        /// The offending data address.
        addr: u32,
    },
    /// The watchdog timer expired without a `wdr`.
    WatchdogTimeout,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::InvalidOpcode { addr, word } => {
                write!(f, "invalid opcode {word:#06x} at {addr:#x}")
            }
            Fault::PcOutOfBounds { pc } => write!(f, "PC out of flash at word {pc:#x}"),
            Fault::Break { addr } => write!(f, "break executed at {addr:#x}"),
            Fault::StackOutOfBounds { sp } => write!(f, "stack access out of bounds (SP={sp:#x})"),
            Fault::DataOutOfBounds { addr } => write!(f, "data access out of bounds ({addr:#x})"),
            Fault::WatchdogTimeout => write!(f, "watchdog timeout"),
        }
    }
}

impl std::error::Error for Fault {}

/// How a `run`-family call ended.
///
/// `Machine::run` and `Machine::run_until` share the same exit conditions,
/// checked in this order on every instruction boundary:
///
/// 1. the cycle budget is exhausted → [`CyclesExhausted`];
/// 2. the PC sits on a registered breakpoint (checked *before* the
///    instruction executes, so resuming requires stepping over it) →
///    [`Breakpoint`];
/// 3. the instruction faults → [`Faulted`];
/// 4. (`run_until` only) the predicate holds *after* the instruction →
///    [`Breakpoint`] with the current PC.
///
/// [`CyclesExhausted`]: RunExit::CyclesExhausted
/// [`Breakpoint`]: RunExit::Breakpoint
/// [`Faulted`]: RunExit::Faulted
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// The cycle budget was exhausted; the machine is still healthy.
    CyclesExhausted,
    /// The machine faulted (it stays faulted until reset).
    Faulted(Fault),
    /// A registered breakpoint was hit (PC is at the breakpoint), or a
    /// `run_until` predicate became true.
    Breakpoint {
        /// Byte address of the breakpoint (or of the PC at predicate time).
        addr: u32,
    },
}

impl RunExit {
    /// Whether the machine is still able to continue executing.
    pub fn is_healthy(&self) -> bool {
        !matches!(self, RunExit::Faulted(_))
    }

    /// The fault, if any.
    pub fn fault(&self) -> Option<Fault> {
        match self {
            RunExit::Faulted(fault) => Some(*fault),
            _ => None,
        }
    }
}
