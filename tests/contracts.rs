//! Cross-crate contracts: constants and formats that two crates must agree
//! on are pinned here so a drift in either side fails loudly.

use mavr_repro::avr_sim::{Machine, HEARTBEAT_BIT};
use mavr_repro::mavlink_lite::{crc_x25, msg, Parser};
use mavr_repro::synth_firmware::{apps, build, layout, BuildOptions};

#[test]
fn firmware_heartbeat_bit_matches_simulator() {
    // corefn.rs hardcodes the PORTB bit; the simulator watches
    // avr_sim::HEARTBEAT_BIT. If they diverge, the master never sees a
    // heartbeat. Verified behaviourally: the generated firmware's toggles
    // are visible to the simulator's monitor.
    let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
    let mut m = Machine::new_atmega2560();
    m.load_flash(0, &fw.image.bytes);
    m.run(500_000);
    assert!(
        m.heartbeat.toggles().len() >= 2,
        "firmware heartbeat must toggle PORTB bit {HEARTBEAT_BIT}"
    );
}

#[test]
fn firmware_crc_matches_protocol_crate() {
    // The AVR-assembly X25 implementation inside the firmware must agree
    // byte-for-byte with the Rust implementation in mavlink-lite, in both
    // directions.
    let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
    let mut m = Machine::new_atmega2560();
    m.load_flash(0, &fw.image.bytes);
    m.run(1_000_000);

    // UAV -> GCS: every transmitted frame parses with a valid checksum.
    let tx = m.uart0.take_tx();
    let mut parser = Parser::new();
    let frames = parser.push_all(&tx);
    assert!(!frames.is_empty());
    assert_eq!(parser.bad_checksums, 0);

    // GCS -> UAV: a frame checksummed by the Rust side is accepted by the
    // firmware's verifier.
    let mut gcs = mavr_repro::mavlink_lite::GroundStation::new();
    m.uart0.inject(&gcs.param_set(b"X", 1.0));
    m.run(1_000_000);
    assert_eq!(m.peek_data(layout::BAD_CRC_COUNT), 0);
    assert_eq!(m.peek_data(layout::PARAM_SET_COUNT), 1);
}

#[test]
fn attack_frame_constant_matches_firmware_layout() {
    // rop::attack hardcodes the handler frame size it reads "off the
    // prologue"; the firmware's layout is the source of truth. A drift
    // would silently break payload geometry, so pin it.
    let fw = build(&apps::tiny_test_app(), &BuildOptions::vulnerable_mavr()).unwrap();
    let ctx = mavr_repro::rop::attack::AttackContext::discover(&fw.image).unwrap();
    assert_eq!(
        ctx.sp_entry - ctx.y_frame,
        layout::HANDLER_FRAME + 3,
        "attack geometry must match the firmware frame"
    );
    assert_eq!(ctx.buffer, ctx.y_frame + 1);
}

#[test]
fn crc_extra_values_match_mavlink_v1() {
    // Both the Rust codec and the generated firmware embed these.
    assert_eq!(msg::crc_extra(msg::HEARTBEAT_ID), 50);
    assert_eq!(msg::crc_extra(msg::PARAM_SET_ID), 168);
    assert_eq!(msg::crc_extra(msg::RAW_IMU_ID), 144);
    assert_eq!(msg::crc_extra(msg::ATTITUDE_ID), 39);
    assert_eq!(msg::crc_extra(msg::COMMAND_LONG_ID), 152);
    // And the CRC primitive is the MCRF4XX variant.
    assert_eq!(crc_x25(b"123456789"), 0x6f91);
}

#[test]
fn memory_map_constants_are_consistent() {
    use mavr_repro::avr_core::device::ATMEGA2560;
    // Fig. 1 quantities.
    assert_eq!(ATMEGA2560.flash_bytes, 256 * 1024);
    assert_eq!(ATMEGA2560.eeprom_bytes, 4 * 1024);
    // Firmware globals live in SRAM, below the stack's working region.
    const { assert!(layout::SRAM_START >= ATMEGA2560.sram_start) };
    assert!(
        layout::FILLER_SCRATCH + 4 * layout::FILLER_SCRATCH_SLOTS < ATMEGA2560.ramend() - 4096,
        "at least 4 KiB of stack headroom"
    );
}

#[test]
fn sensor_addresses_flow_into_telemetry() {
    // layout::GYRO is both the attack target and the RAW_IMU source; poke
    // it from the host and watch it surface in telemetry.
    let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
    let mut m = Machine::new_atmega2560();
    m.load_flash(0, &fw.image.bytes);
    m.run(200_000);
    m.poke_data(layout::GYRO + 4, 0x5a); // gyro_z low byte
    m.poke_data(layout::GYRO + 5, 0x7f); // gyro_z high byte
    let _ = m.uart0.take_tx();
    m.run(400_000);
    let mut gcs = mavr_repro::mavlink_lite::GroundStation::new();
    gcs.ingest(&m.uart0.take_tx());
    let imu = gcs
        .received
        .iter()
        .rev()
        .find(|p| p.msgid == msg::RAW_IMU_ID)
        .map(|p| msg::RawImu::from_payload(p.msgid, &p.payload).unwrap())
        .expect("RAW_IMU frame");
    assert_eq!(imu.gyro[2], 0x7f5a);
}
