//! Watchdog quality: how fast does the master catch a failed attack, and
//! what does recovery cost? The paper's in-flight-recovery claim (§V-C,
//! §IX) depends on detection latency being a small multiple of the
//! heartbeat period.

use mavr_repro::mavlink_lite::GroundStation;
use mavr_repro::mavr::policy::RandomizationPolicy;
use mavr_repro::mavr_board::{BoardEvent, MavrBoard};
use mavr_repro::rop::attack::AttackContext;
use mavr_repro::synth_firmware::{apps, build, layout, BuildOptions};

#[test]
fn detection_latency_is_bounded_by_the_watchdog_window() {
    let fw = build(&apps::tiny_test_app(), &BuildOptions::vulnerable_mavr()).unwrap();
    let ctx = AttackContext::discover(&fw.image).unwrap();
    let payload = ctx
        .v2_payload(&[(layout::GYRO + 3, [0xde, 0xad, 0x42])])
        .unwrap();

    // Find layouts where the failed attack crashes, and measure how long
    // the app was down before the master reflashed it.
    let mut measured = 0;
    for seed in 0..12u64 {
        let mut board =
            MavrBoard::provision(&fw.image, seed, RandomizationPolicy::default()).unwrap();
        board.run(300_000).unwrap();
        let healthy_until = board.app.machine.cycles();
        let mut gcs = GroundStation::new();
        board.uplink(&gcs.exploit_packet(&payload).unwrap());
        board.run(6_000_000).unwrap();
        if board.recoveries() == 0 {
            continue; // soft landing; nothing to time
        }
        measured += 1;
        // The machine's cycle counter survives recovery, so the first
        // post-recovery heartbeat bounds the outage end.
        let outage_end = board
            .app
            .machine
            .heartbeat
            .toggles()
            .first()
            .copied()
            .unwrap_or(board.app.machine.cycles());
        let outage = outage_end - healthy_until;
        // Detection happens within the watchdog window plus one polling
        // chunk; add loop slack for the cycles spent flying before the
        // payload hit.
        let bound = board.heartbeat_timeout * 2 + 500_000;
        assert!(
            outage < bound,
            "seed {seed}: outage {outage} cycles exceeds bound {bound}"
        );
        // The log shows the canonical sequence: recovery then reboot.
        assert!(board
            .events
            .iter()
            .any(|e| matches!(e, BoardEvent::Recovery { .. })));
    }
    assert!(
        measured >= 2,
        "need at least two crashing layouts to measure"
    );
}

#[test]
fn recovery_cost_matches_table2_model() {
    // Every recovery pays one full randomized reprogramming — the Table II
    // startup cost — plus nothing else.
    let fw = build(&apps::tiny_test_app(), &BuildOptions::vulnerable_mavr()).unwrap();
    let mut board = MavrBoard::provision(&fw.image, 9, RandomizationPolicy::default()).unwrap();
    let report = board
        .recover(mavr_repro::mavr_board::RecoveryCause::HeartbeatLost)
        .unwrap();
    assert!(report.randomized);
    let expected_ms = f64::from(report.image_bytes) * 10.0 / 115.2;
    assert!((report.transfer_ms - expected_ms).abs() < 0.5);
    assert!(report.total_ms >= report.transfer_ms);
}
