//! Differential testing: the MAVLink receive parser implemented in AVR
//! instructions inside the firmware must accept exactly the frames the
//! reference Rust parser accepts, for arbitrary interleavings of valid
//! packets and line noise.

use mavr_repro::avr_sim::Machine;
use mavr_repro::mavlink_lite::{msg, Packet, Parser};
use mavr_repro::synth_firmware::{apps, build, layout, BuildOptions};
use proptest::prelude::*;

/// Build a stream of valid PARAM_SET packets separated by noise bursts.
/// Noise never contains the magic byte, so frame boundaries stay
/// unambiguous and both parsers must agree exactly.
fn stream(values: &[f32], noise_bursts: &[Vec<u8>]) -> (Vec<u8>, usize) {
    let mut out = Vec::new();
    let mut count = 0;
    for (i, v) in values.iter().enumerate() {
        if let Some(n) = noise_bursts.get(i) {
            out.extend_from_slice(n);
        }
        let ps = msg::ParamSet {
            param_value: *v,
            target_system: 1,
            target_component: 1,
            param_id: b"P".to_vec(),
            param_type: 9,
        };
        let pkt = Packet::new(i as u8, 255, 0, msg::PARAM_SET_ID, ps.to_payload()).unwrap();
        out.extend_from_slice(&pkt.encode());
        count += 1;
    }
    (out, count)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn firmware_parser_agrees_with_reference(
        values in proptest::collection::vec(-100.0f32..100.0, 1..6),
        noise_bursts in proptest::collection::vec(
            proptest::collection::vec(any::<u8>().prop_filter("no magic", |b| *b != 0xfe), 0..40),
            0..6
        ),
    ) {
        let (bytes, sent) = stream(&values, &noise_bursts);

        // Reference side.
        let mut reference = Parser::new();
        let ref_frames = reference
            .push_all(&bytes)
            .into_iter()
            .filter(|p| p.msgid == msg::PARAM_SET_ID)
            .count();
        prop_assert_eq!(ref_frames, sent, "reference must accept every frame");

        // Firmware side.
        let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
        let mut m = Machine::new_atmega2560();
        m.load_flash(0, &fw.image.bytes);
        m.run(150_000);
        m.uart0.inject(&bytes);
        // Enough cycles to drain the whole stream.
        m.run(400_000 + bytes.len() as u64 * 2_000);
        prop_assert!(m.fault().is_none(), "fault: {:?}", m.fault());
        prop_assert_eq!(
            usize::from(m.peek_data(layout::PARAM_SET_COUNT)),
            ref_frames,
            "firmware accepted a different frame count than the reference"
        );
        // The last PARAM value committed matches the last packet sent.
        let committed = f32::from_le_bytes([
            m.peek_data(layout::PARAM_VALUE),
            m.peek_data(layout::PARAM_VALUE + 1),
            m.peek_data(layout::PARAM_VALUE + 2),
            m.peek_data(layout::PARAM_VALUE + 3),
        ]);
        prop_assert_eq!(committed, *values.last().unwrap());
    }
}
