//! Property-based tests over the randomizer and the attack machinery:
//! invariants that must hold for *every* seed and parameter draw.

use mavr_repro::avr_core::image::SymbolKind;
use mavr_repro::avr_sim::Machine;
use mavr_repro::mavr::{randomize, RandomizeOptions};
use mavr_repro::synth_firmware::{build, AppSpec, BuildOptions};
use proptest::prelude::*;

fn app(functions: usize, seed: u64) -> AppSpec {
    AppSpec {
        name: "PropApp",
        functions,
        stock_size: None,
        mavr_size: None,
        seed,
        vehicle_type: 1,
        flight: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any app shape and any randomization seed: the shuffled image is
    /// structurally sound, size-preserving, a permutation of the same
    /// symbols — and still *boots and heartbeats*.
    #[test]
    fn randomization_preserves_behaviour(
        functions in 40usize..120,
        app_seed in 0u64..1000,
        rand_seed in 0u64..1000,
    ) {
        let fw = build(&app(functions, app_seed), &BuildOptions::safe_mavr()).unwrap();
        let mut rng = mavr_repro::mavr::seeded_rng(rand_seed);
        let r = randomize(&fw.image, &mut rng, &RandomizeOptions::default()).unwrap();

        // Structural invariants.
        r.image.validate().unwrap();
        prop_assert_eq!(r.image.code_size(), fw.image.code_size());
        prop_assert_eq!(r.image.text_end, fw.image.text_end);
        prop_assert_eq!(r.image.function_count(), fw.image.function_count());
        let mut old_names: Vec<&str> =
            fw.image.symbols.iter().map(|s| s.name.as_str()).collect();
        let mut new_names: Vec<&str> =
            r.image.symbols.iter().map(|s| s.name.as_str()).collect();
        old_names.sort_unstable();
        new_names.sort_unstable();
        prop_assert_eq!(old_names, new_names);
        // Sizes travel with their symbols.
        for s in &fw.image.symbols {
            let moved = r.image.symbol(&s.name).unwrap();
            prop_assert_eq!(moved.size, s.size);
            prop_assert_eq!(moved.kind, s.kind);
            if s.kind != SymbolKind::Function {
                prop_assert_eq!(moved.addr, s.addr, "non-functions must not move");
            }
        }
        // The permutation is a bijection.
        let mut seen = vec![false; r.permutation.len()];
        for &p in &r.permutation {
            prop_assert!(!seen[p]);
            seen[p] = true;
        }

        // Behavioural invariant: it flies.
        let mut m = Machine::new_atmega2560();
        m.load_flash(0, &r.image.bytes);
        m.run(1_200_000);
        prop_assert!(m.fault().is_none(), "fault: {:?}", m.fault());
        prop_assert!(m.heartbeat.toggles().len() >= 10);
    }

    /// Randomizing a randomized image works too (the master re-randomizes
    /// from the pristine container in practice, but the engine itself is
    /// idempotent in structure).
    #[test]
    fn double_randomization_is_sound(rand_seed in 0u64..500) {
        let fw = build(&app(50, 7), &BuildOptions::safe_mavr()).unwrap();
        let mut rng = mavr_repro::mavr::seeded_rng(rand_seed);
        let once = randomize(&fw.image, &mut rng, &RandomizeOptions::default()).unwrap();
        let twice = randomize(&once.image, &mut rng, &RandomizeOptions::default()).unwrap();
        twice.image.validate().unwrap();
        let mut m = Machine::new_atmega2560();
        m.load_flash(0, &twice.image.bytes);
        m.run(1_200_000);
        prop_assert!(m.fault().is_none());
        prop_assert!(m.heartbeat.toggles().len() >= 10);
    }

    /// The attack context is a pure function of the image: any two
    /// discoveries agree, for any app shape.
    #[test]
    fn attack_discovery_is_deterministic(functions in 40usize..100, app_seed in 0u64..500) {
        let fw = build(&app(functions, app_seed), &BuildOptions::vulnerable_mavr()).unwrap();
        let a = mavr_repro::rop::attack::AttackContext::discover(&fw.image).unwrap();
        let b = mavr_repro::rop::attack::AttackContext::discover(&fw.image).unwrap();
        prop_assert_eq!(a.sp_entry, b.sp_entry);
        prop_assert_eq!(a.orig_ret, b.orig_ret);
        prop_assert_eq!(a.gadgets.stk_move, b.gadgets.stk_move);
        prop_assert_eq!(a.gadgets.write_mem_std, b.gadgets.write_mem_std);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The stealthy attack works against the unprotected image for any
    /// 3-byte value written anywhere in the scratch region.
    #[test]
    fn v2_attack_writes_arbitrary_values(
        v0 in any::<u8>(), v1 in any::<u8>(), v2 in any::<u8>(),
        slot in 0u16..100,
    ) {
        let fw = build(&app(60, 0x7e57), &BuildOptions::vulnerable_mavr()).unwrap();
        let ctx = mavr_repro::rop::attack::AttackContext::discover(&fw.image).unwrap();
        let target = 0x1e00 + slot * 4;
        let payload = ctx.v2_payload(&[(target, [v0, v1, v2])]).unwrap();
        let mut m = Machine::new_atmega2560();
        m.load_flash(0, &fw.image.bytes);
        m.run(200_000);
        let mut gcs = mavr_repro::mavlink_lite::GroundStation::new();
        m.uart0.inject(&gcs.exploit_packet(&payload).unwrap());
        m.run(3_000_000);
        prop_assert!(m.fault().is_none(), "fault: {:?}", m.fault());
        prop_assert_eq!(m.peek_range(target, 3), vec![v0, v1, v2]);
        prop_assert!(m.heartbeat.toggles().len() > 20, "still flying");
    }
}
