//! Property tests: the MAVLink [`Parser`] against the lossy-channel model.
//!
//! Differential setup: the same frame stream goes through a lossless
//! channel (the reference — every frame must parse) and through an
//! arbitrarily impaired [`LossyChannel`]. Whatever the impairments, the
//! parser must never fabricate a packet the sender did not frame, and it
//! must resynchronize: clean traffic appended after the lossy burst parses
//! completely.

use mavr_repro::mavlink_lite::channel::{LossConfig, LossyChannel};
use mavr_repro::mavlink_lite::{Packet, Parser};
use proptest::prelude::*;
use std::collections::HashSet;

/// Distinct, recognizable frames: payload bytes echo the sequence number.
fn frames(n: u8, payload_len: usize) -> Vec<Packet> {
    (0..n)
        .map(|i| Packet::new(i, 1, 1, 0, vec![i; payload_len]).expect("fits"))
        .collect()
}

fn encode_all(packets: &[Packet]) -> Vec<u8> {
    packets.iter().flat_map(Packet::encode).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parser_never_fabricates_and_resyncs_after_impairments(
        n in 4u8..40,
        payload_len in 1usize..32,
        drop in 0.0f64..0.08,
        corrupt in 0.0f64..0.08,
        duplicate in 0.0f64..0.08,
        delay in 0.0f64..0.08,
        max_delay in 1usize..24,
        seed in any::<u64>(),
    ) {
        let sent = frames(n, payload_len);
        let wire = encode_all(&sent);

        // Reference: the lossless channel is transparent, so the parser
        // accepts exactly the sent frames.
        let mut perfect = LossyChannel::perfect();
        let mut reference = Parser::new();
        let ref_got = reference.push_all(&perfect.transmit(&wire));
        prop_assert_eq!(perfect.flush(), vec![]);
        prop_assert_eq!(&ref_got, &sent, "lossless differential baseline broke");

        // Impaired path.
        let mut ch = LossyChannel::new(LossConfig {
            drop, corrupt, duplicate, delay, max_delay, seed,
        });
        let mut lossy = ch.transmit(&wire);
        lossy.extend(ch.flush());
        let mut parser = Parser::new();
        let got = parser.push_all(&lossy);

        // No fabrication: every surviving packet is byte-identical to one
        // the sender framed (the x25 checksum rejects mangled frames).
        let sent_encodings: HashSet<Vec<u8>> = sent.iter().map(Packet::encode).collect();
        for p in &got {
            prop_assert!(
                sent_encodings.contains(&p.encode()),
                "parser fabricated a packet: {p:?}"
            );
        }
        prop_assert!(got.len() <= sent.len(), "more packets out than in");

        // Resynchronization: after a quiet gap long enough to starve any
        // half-open bogus frame (max payload + header + CRC), fresh clean
        // frames all parse.
        let tail = frames(n, payload_len);
        let mut stream = vec![0u8; 263];
        stream.extend(encode_all(&tail));
        let after = parser.push_all(&stream);
        prop_assert_eq!(&after, &tail, "parser failed to resynchronize");
    }

    #[test]
    fn channel_determinism_is_chunking_invariant(
        n in 2u8..20,
        p in 0.0f64..0.1,
        delay in 0.0f64..0.1,
        seed in any::<u64>(),
        cut in 1usize..64,
    ) {
        let wire = encode_all(&frames(n, 9));
        let cfg = LossConfig {
            drop: p, corrupt: p, duplicate: p, delay,
            max_delay: 11, seed,
        };
        let whole = {
            let mut ch = LossyChannel::new(cfg);
            let mut out = ch.transmit(&wire);
            out.extend(ch.flush());
            out
        };
        let split = {
            let mut ch = LossyChannel::new(cfg);
            let cut = cut.min(wire.len());
            let mut out = ch.transmit(&wire[..cut]);
            out.extend(ch.transmit(&wire[cut..]));
            out.extend(ch.flush());
            out
        };
        prop_assert_eq!(whole, split, "chunk boundary changed the stream");
    }
}
