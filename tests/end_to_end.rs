//! End-to-end integration: the full attack/defense lifecycle across every
//! crate, on a mid-sized application.

use mavr_repro::avr_sim::Machine;
use mavr_repro::mavlink_lite::GroundStation;
use mavr_repro::mavr::policy::RandomizationPolicy;
use mavr_repro::mavr_board::MavrBoard;
use mavr_repro::rop::attack::AttackContext;
use mavr_repro::rop::scanner;
use mavr_repro::synth_firmware::{build, layout, AppSpec, BuildOptions};

fn midsize_app() -> AppSpec {
    AppSpec {
        name: "MidSize",
        functions: 150,
        stock_size: None,
        mavr_size: None,
        seed: 0x150,
        vehicle_type: 2,
        flight: false,
    }
}

#[test]
fn full_attack_defense_lifecycle() {
    let fw = build(&midsize_app(), &BuildOptions::vulnerable_mavr()).unwrap();
    assert_eq!(fw.image.function_count(), 150);

    // Phase 1 — attacker: static analysis + dry run on the unprotected
    // binary.
    let gadgets = scanner::scan(&fw.image, &scanner::ScanOptions::default());
    assert!(gadgets.len() > 100, "rich gadget population");
    let ctx = AttackContext::discover(&fw.image).unwrap();
    let payload = ctx
        .v2_payload(&[(layout::GYRO + 3, [0xca, 0xfe, 0x99])])
        .unwrap();

    // Phase 2 — the stealthy attack works on the unprotected UAV.
    let mut uav = Machine::new_atmega2560();
    uav.load_flash(0, &fw.image.bytes);
    uav.run(300_000);
    let mut gcs = GroundStation::new();
    uav.uart0.inject(&gcs.exploit_packet(&payload).unwrap());
    uav.run(4_000_000);
    assert!(uav.fault().is_none(), "clean return on the unprotected UAV");
    assert_eq!(uav.peek_range(layout::GYRO + 3, 3), vec![0xca, 0xfe, 0x99]);
    gcs.ingest(&uav.uart0.take_tx());
    assert!(gcs.link_alive(20, 3), "operator sees nothing");

    // Phase 3 — the same payload against MAVR-protected boards: never
    // succeeds; keep drawing layouts until one attempt crashes visibly and
    // is recovered (roughly half do; 16 draws make a miss astronomically
    // unlikely).
    let mut detected = 0;
    for seed in 0..16u64 {
        let mut board =
            MavrBoard::provision(&fw.image, seed, RandomizationPolicy::default()).unwrap();
        board.run(300_000).unwrap();
        let mut mal = GroundStation::new();
        board.uplink(&mal.exploit_packet(&payload).unwrap());
        board.run(6_000_000).unwrap();
        assert_ne!(
            board.app.machine.peek_range(layout::GYRO + 3, 3),
            vec![0xca, 0xfe, 0x99],
            "seed {seed}: randomization must defeat the attack"
        );
        if board.recoveries() > 0 {
            detected += 1;
            if detected >= 2 {
                break;
            }
        }
    }
    assert!(
        detected >= 1,
        "at least one failed attempt tripped the watchdog"
    );
}

#[test]
fn rebuilt_attack_against_known_permutation_succeeds() {
    // Sanity check on the security argument: randomization (not anything
    // else) is what stops the attack. An attacker who *knew* the permuted
    // image could re-derive a working payload.
    let fw = build(&midsize_app(), &BuildOptions::vulnerable_mavr()).unwrap();
    let mut rng = mavr_repro::mavr::seeded_rng(99);
    let r = mavr_repro::mavr::randomize(
        &fw.image,
        &mut rng,
        &mavr_repro::mavr::RandomizeOptions::default(),
    )
    .unwrap();

    // The omniscient attacker targets the randomized image directly.
    let ctx = AttackContext::discover(&r.image).unwrap();
    let payload = ctx
        .v2_payload(&[(layout::GYRO + 3, [0x0b, 0xad, 0x01])])
        .unwrap();
    let mut uav = Machine::new_atmega2560();
    uav.load_flash(0, &r.image.bytes);
    uav.run(300_000);
    let mut gcs = GroundStation::new();
    uav.uart0.inject(&gcs.exploit_packet(&payload).unwrap());
    uav.run(4_000_000);
    assert!(uav.fault().is_none());
    assert_eq!(uav.peek_range(layout::GYRO + 3, 3), vec![0x0b, 0xad, 0x01]);
    // Which is why the readout-protection fuse matters: it is what keeps
    // the attacker from ever seeing the randomized image.
}

#[test]
fn container_survives_the_full_pipeline() {
    // firmware -> preprocess -> HEX text -> parse -> randomize -> run.
    let fw = build(&midsize_app(), &BuildOptions::safe_mavr()).unwrap();
    let container = mavr_repro::mavr::preprocess(&fw.image).unwrap();
    let text = container.to_text();
    let parsed = mavr_repro::hexfile::MavrContainer::parse(&text).unwrap();
    assert_eq!(parsed.image, fw.image);

    let mut rng = mavr_repro::mavr::seeded_rng(3);
    let r = mavr_repro::mavr::randomize(
        &parsed.image,
        &mut rng,
        &mavr_repro::mavr::RandomizeOptions::default(),
    )
    .unwrap();
    let mut m = Machine::new_atmega2560();
    m.load_flash(0, &r.image.bytes);
    m.run(2_000_000);
    assert!(m.fault().is_none());
    assert!(m.heartbeat.toggles().len() > 10);
}

#[test]
fn v1_crash_attack_is_noticed_by_ground_station() {
    // The contrast that motivates stealth (§IV-C): after V1 the telemetry
    // stops, which an operator console immediately sees.
    let fw = build(&midsize_app(), &BuildOptions::vulnerable_mavr()).unwrap();
    let ctx = AttackContext::discover(&fw.image).unwrap();
    let mut uav = Machine::new_atmega2560();
    uav.load_flash(0, &fw.image.bytes);
    uav.run(300_000);
    let mut gcs = GroundStation::new();
    gcs.ingest(&uav.uart0.take_tx());
    let packets_before = gcs.received.len();
    assert!(packets_before > 0);

    uav.uart0.inject(
        &gcs.exploit_packet(&ctx.v1_payload(layout::GYRO + 3, [1, 2, 3]))
            .unwrap(),
    );
    uav.run(8_000_000);
    assert!(uav.fault().is_some(), "V1 smashes the stack and crashes");
    assert_eq!(uav.peek_range(layout::GYRO + 3, 3), vec![1, 2, 3]);

    gcs.ingest(&uav.uart0.take_tx());
    let recent_heartbeats = gcs
        .received
        .iter()
        .rev()
        .take(5)
        .filter(|p| p.msgid == mavr_repro::mavlink_lite::msg::HEARTBEAT_ID)
        .count();
    // Telemetry flow ended shortly after the crash; the stream is finite
    // and stale.
    let drained = uav.uart0.take_tx();
    assert!(drained.is_empty(), "no more telemetry after the crash");
    let _ = recent_heartbeats;
}

#[test]
fn sensor_node_profile_gets_the_same_protection() {
    // §X future work: MAVR on other networked embedded systems. Same
    // pipeline, sensor-network profile.
    let spec = mavr_repro::synth_firmware::apps::synth_sensor_node();
    let fw = build(&spec, &BuildOptions::vulnerable_mavr()).unwrap();
    assert_eq!(fw.image.function_count(), 220);

    let ctx = AttackContext::discover(&fw.image).unwrap();
    let payload = ctx
        .v2_payload(&[(layout::GYRO + 3, [0x66, 0x77, 0x88])])
        .unwrap();

    // Works unprotected…
    let mut node = Machine::new_atmega2560();
    node.load_flash(0, &fw.image.bytes);
    node.run(300_000);
    let mut gcs = GroundStation::new();
    node.uart0.inject(&gcs.exploit_packet(&payload).unwrap());
    node.run(4_000_000);
    assert!(node.fault().is_none());
    assert_eq!(node.peek_range(layout::GYRO + 3, 3), vec![0x66, 0x77, 0x88]);

    // …and fails against the MAVR board.
    let mut board = MavrBoard::provision(&fw.image, 3, RandomizationPolicy::default()).unwrap();
    board.run(300_000).unwrap();
    let mut mal = GroundStation::new();
    board.uplink(&mal.exploit_packet(&payload).unwrap());
    board.run(6_000_000).unwrap();
    assert_ne!(
        board.app.machine.peek_range(layout::GYRO + 3, 3),
        vec![0x66, 0x77, 0x88]
    );
}
