//! Hand-computed acceptance for the cycle-attributed profiler: tiny
//! assembled programs whose per-symbol cycle budgets can be worked out on
//! paper from `avr_core::cycles::base_cycles`, asserted exactly — the
//! per-function table and the folded-stacks flamegraph export both.

use mavr_repro::avr_asm::{link, parse_program};
use mavr_repro::avr_sim::{Fault, Machine, RunExit};

fn profile(src: &str) -> (Machine, mavr_repro::avr_sim::CycleProfile) {
    let program = parse_program(src).expect("parse");
    let image = link(&program).expect("link");
    let mut m = Machine::new_atmega2560();
    m.load_flash(0, &image.bytes);
    m.enable_cycle_profile(&image);
    let exit = m.run(10_000);
    assert!(
        matches!(exit, RunExit::Faulted(Fault::Break { .. })),
        "program must halt at its break: {exit:?}"
    );
    let p = m.take_cycle_profile().expect("profiler was enabled");
    (m, p)
}

#[test]
fn call_ret_budget_is_exact() {
    // Cycle budget (base_cycles): reset `jmp main` = 3 (charged to
    // __vectors), ldi/out = 1 each, call = 5, ret = 5, break = 1.
    //
    //   __vectors : 3                                      (jmp main)
    //   main      : 4 (SP init) + 5 + 5 (calls) + 1 (break) = 15 exclusive
    //   work      : 2 × (1 + 5)                            = 12 exclusive
    //   main incl : 15 + 12 = 27; total = 3 + 15 + 12 = 30
    let (m, p) = profile(
        "
.device atmega2560
.vectors 1
.vector 0 main

.func main
    ldi r24, 0x21
    out 0x3e, r24
    ldi r24, 0xff
    out 0x3d, r24
    call work
    call work
    break
.endfunc

.func work
    ldi r25, 7
    ret
.endfunc
",
    );
    assert_eq!(m.cycles(), 30);
    assert_eq!(p.total_cycles(), 30);
    assert_eq!(p.folded_dropped_cycles(), 0);

    let funcs = p.functions();
    let by_name = |n: &str| funcs.iter().find(|f| f.name == n).expect(n);
    assert_eq!(funcs.len(), 3, "exactly three symbols ran: {funcs:?}");
    assert_eq!(funcs[0].name, "main", "hot loop must lead the table");
    assert_eq!(
        (by_name("main").exclusive, by_name("main").inclusive),
        (15, 27)
    );
    assert_eq!(
        (by_name("work").exclusive, by_name("work").inclusive),
        (12, 12)
    );
    assert_eq!(
        (
            by_name("__vectors").exclusive,
            by_name("__vectors").inclusive
        ),
        (3, 3)
    );

    assert_eq!(p.folded(), "__vectors 3\nmain 15\nmain;work 12\n");
}

#[test]
fn tail_jump_is_a_lateral_move_not_a_call() {
    // `work` tail-jumps into `tailee`, whose `ret` returns straight to
    // `main` — the profiler must *replace* the top frame on the lateral
    // move (no main;work;tailee nesting) and still pop back to main.
    //
    //   __vectors : 3
    //   main      : 4 (SP init) + 5 (call) + 1 (break) = 10 exclusive
    //   work      : 1 (ldi) + 3 (jmp)                  =  4 exclusive
    //   tailee    : 1 (ldi) + 5 (ret)                  =  6 exclusive
    //   main incl : 10 + 4 + 6 = 20; total = 23
    let (m, p) = profile(
        "
.device atmega2560
.vectors 1
.vector 0 main

.func main
    ldi r24, 0x21
    out 0x3e, r24
    ldi r24, 0xff
    out 0x3d, r24
    call work
    break
.endfunc

.func work
    ldi r25, 1
    jmp tailee
.endfunc

.func tailee
    ldi r25, 2
    ret
.endfunc
",
    );
    assert_eq!(m.cycles(), 23);
    assert_eq!(p.total_cycles(), 23);

    let funcs = p.functions();
    let by_name = |n: &str| funcs.iter().find(|f| f.name == n).expect(n);
    assert_eq!(
        (by_name("main").exclusive, by_name("main").inclusive),
        (10, 20)
    );
    assert_eq!(
        (by_name("work").exclusive, by_name("work").inclusive),
        (4, 4)
    );
    assert_eq!(
        (by_name("tailee").exclusive, by_name("tailee").inclusive),
        (6, 6)
    );

    assert_eq!(
        p.folded(),
        "__vectors 3\nmain 10\nmain;tailee 6\nmain;work 4\n"
    );
}
