//! Campaign-engine acceptance: determinism across runs and worker-thread
//! counts, and the headline fleet results (randomization defeats the
//! canned exploit; the master recovers crashed boards; lossy links are
//! visible in the sequence-gap accounting but never fabricate recoveries).

use mavr_repro::mavr_fleet::{run_campaign, run_campaign_with_metrics, CampaignConfig, Scenario};

/// A campaign small enough to run three times in one test.
fn small_cfg() -> CampaignConfig {
    CampaignConfig {
        boards: 2,
        scenarios: vec![Scenario::Benign, Scenario::V2Stealthy],
        loss_levels: vec![0.0, 0.02],
        attack_cycles: 2_000_000,
        ..CampaignConfig::default()
    }
}

#[test]
fn report_json_is_byte_identical_across_runs_and_thread_counts() {
    let (one_thread, metrics_one) = run_campaign_with_metrics(&CampaignConfig {
        threads: 1,
        ..small_cfg()
    });
    let (four_threads, metrics_four) = run_campaign_with_metrics(&CampaignConfig {
        threads: 4,
        ..small_cfg()
    });
    let one_thread_again = run_campaign(&CampaignConfig {
        threads: 1,
        ..small_cfg()
    });
    assert_eq!(
        one_thread.to_json(),
        four_threads.to_json(),
        "worker-thread count leaked into the report"
    );
    assert_eq!(
        one_thread.to_json(),
        one_thread_again.to_json(),
        "identical configs must replay byte-identically"
    );
    assert_eq!(one_thread.to_jsonl(), four_threads.to_jsonl());
    // The shard-merged metrics registry obeys the same contract: worker
    // count must not leak into either exposition, and the shards must
    // agree with the pure fold over the report's outcomes.
    assert_eq!(metrics_one.to_prometheus(), metrics_four.to_prometheus());
    assert_eq!(metrics_one.to_jsonl(), metrics_four.to_jsonl());
    assert_eq!(metrics_one.to_jsonl(), one_thread.metrics().to_jsonl());
    // Sanity on shape: scenario-major cell order, every board reported.
    assert_eq!(one_thread.cells.len(), 4);
    assert_eq!(one_thread.outcomes.len(), 8);
    assert_eq!(one_thread.fleet.links, 8);
}

#[test]
fn stealthy_cell_recovers_boards_without_a_single_success() {
    // The paper's core claim at fleet scale: over a perfect link the
    // canned V2 exploit reaches every board, never lands (each board flies
    // its own permutation), and the master detects and reflashes a good
    // fraction of the crashed ones.
    let report = run_campaign(&CampaignConfig {
        boards: 8,
        scenarios: vec![Scenario::V2Stealthy],
        loss_levels: vec![0.0],
        ..CampaignConfig::default()
    });
    let cell = &report.cells[0];
    assert_eq!(
        cell.attack_successes, 0,
        "an attack landed on a randomized board"
    );
    assert!(
        cell.boards_recovered >= 1,
        "no board recovered out of {}",
        cell.boards
    );
    assert_eq!(cell.latency_sketch.count() as usize, cell.boards_recovered);
    assert!(cell.mean_time_to_recovery().unwrap() > 0.0);
    let (lo, p50, hi) = cell.latency_spread().unwrap();
    assert!(lo <= p50 && p50 <= hi, "sketch quantiles must be ordered");
    // Detection is the heartbeat watchdog: latency is at least the
    // master's timeout window away from injection only when the crash was
    // silent — but it can never exceed the post-injection flight.
    assert!(hi < CampaignConfig::default().attack_cycles);
}

#[test]
fn benign_fleet_is_quiet_and_loss_shows_up_in_seq_gaps() {
    let report = run_campaign(&CampaignConfig {
        boards: 4,
        scenarios: vec![Scenario::Benign],
        loss_levels: vec![0.0, 0.05],
        attack_cycles: 2_000_000,
        ..CampaignConfig::default()
    });
    let clean = &report.cells[0];
    let lossy = &report.cells[1];
    assert_eq!(clean.loss, 0.0);
    assert_eq!(lossy.loss, 0.05);
    for cell in [clean, lossy] {
        assert_eq!(cell.recoveries_total, 0, "benign boards must never recover");
        assert_eq!(cell.attack_successes, 0);
    }
    // The perfect link delivers every frame in order; the lossy one leaves
    // checksum failures and sequence gaps on the ground station.
    assert_eq!(clean.seq_gaps, 0);
    assert_eq!(clean.bad_checksums, 0);
    assert!(lossy.seq_gaps > 0, "5% loss left no sequence gaps");
    assert!(lossy.packets_lost > 0);
    assert!(lossy.bytes_dropped > 0 && lossy.bytes_corrupted > 0);
    assert!(
        lossy.heartbeats < clean.heartbeats,
        "loss cannot increase decoded heartbeats"
    );
}
