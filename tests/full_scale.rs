//! Paper-scale validation: the attack/defense story on the full calibrated
//! SynthPlane (917 functions, 221 294 bytes) — not just the small test app.
//!
//! These run in seconds under `--release`; under a debug profile the
//! simulator is ~20× slower, so budget accordingly.

use mavr_repro::avr_sim::Machine;
use mavr_repro::mavlink_lite::GroundStation;
use mavr_repro::mavr::policy::RandomizationPolicy;
use mavr_repro::mavr_board::MavrBoard;
use mavr_repro::rop::attack::AttackContext;
use mavr_repro::rop::scanner::{classify, scan, ScanOptions};
use mavr_repro::synth_firmware::{apps, build, layout, BuildOptions};

#[test]
fn synth_plane_flies_and_talks_mavlink() {
    let fw = build(&apps::synth_plane(), &BuildOptions::safe_mavr()).unwrap();
    assert_eq!(fw.image.function_count(), 917);
    assert_eq!(fw.image.code_size(), 221_294);
    let mut m = Machine::new_atmega2560();
    m.load_flash(0, &fw.image.bytes);
    m.run(1_500_000);
    assert!(m.fault().is_none(), "{:?}", m.fault());
    let mut gcs = GroundStation::new();
    gcs.ingest(&m.uart0.take_tx());
    assert!(gcs.heartbeats.len() >= 5);
    assert_eq!(gcs.bad_checksums(), 0);
}

#[test]
fn synth_plane_stealthy_attack_and_defense() {
    let fw = build(&apps::synth_plane(), &BuildOptions::vulnerable_mavr()).unwrap();

    // The attacker's analysis scales to the paper-size binary.
    assert!(classify(&fw.image).is_some());
    let gadgets = scan(&fw.image, &ScanOptions::default());
    assert!(
        gadgets.len() > 400,
        "paper-scale gadget population (paper: 953), got {}",
        gadgets.len()
    );

    let ctx = AttackContext::discover(&fw.image).unwrap();
    let payload = ctx
        .v2_payload(&[(layout::GYRO + 3, [0xde, 0xad, 0x42])])
        .unwrap();

    // Stealthy attack against the unprotected full-size UAV.
    let mut uav = Machine::new_atmega2560();
    uav.load_flash(0, &fw.image.bytes);
    uav.run(400_000);
    let mut gcs = GroundStation::new();
    uav.uart0.inject(&gcs.exploit_packet(&payload).unwrap());
    uav.run(3_000_000);
    assert!(uav.fault().is_none(), "clean return at paper scale");
    assert_eq!(uav.peek_range(layout::GYRO + 3, 3), vec![0xde, 0xad, 0x42]);
    gcs.ingest(&uav.uart0.take_tx());
    assert!(gcs.link_alive(20, 3));

    // Against the randomized board: defeated.
    let mut board = MavrBoard::provision(&fw.image, 0x917, RandomizationPolicy::default()).unwrap();
    board.run(400_000).unwrap();
    let mut mal = GroundStation::new();
    board.uplink(&mal.exploit_packet(&payload).unwrap());
    board.run(4_000_000).unwrap();
    assert_ne!(
        board.app.machine.peek_range(layout::GYRO + 3, 3),
        vec![0xde, 0xad, 0x42]
    );
}

#[test]
fn synth_plane_randomizes_and_still_flies() {
    let fw = build(&apps::synth_plane(), &BuildOptions::safe_mavr()).unwrap();
    let mut rng = mavr_repro::mavr::seeded_rng(2015);
    let r = mavr_repro::mavr::randomize(
        &fw.image,
        &mut rng,
        &mavr_repro::mavr::RandomizeOptions::default(),
    )
    .unwrap();
    // Patch accounting at paper scale.
    assert!(r.report.calls_patched > 250);
    assert!(r.report.trampolines_patched > 20);
    assert!(r.report.pointers_patched >= 8);
    let mut m = Machine::new_atmega2560();
    m.load_flash(0, &r.image.bytes);
    m.run(1_500_000);
    assert!(m.fault().is_none(), "{:?}", m.fault());
    assert!(m.heartbeat.toggles().len() >= 5);
}
