//! Pin the reproduced evaluation numbers against the paper's reported
//! values (Tables I–III, §VII-B1, §VIII-B). These are the headline
//! reproduction claims; EXPERIMENTS.md documents each.

use mavr_repro::mavr_board::SerialLink;
use mavr_repro::synth_firmware::{apps, build, BuildOptions};

#[test]
fn table1_function_counts() {
    // Paper Table I: Arduplane 917, Arducopter 1030, Ardurover 800.
    let expected = [917usize, 1030, 800];
    for (spec, want) in apps::all_paper_apps().iter().zip(expected) {
        let fw = build(spec, &BuildOptions::safe_mavr()).unwrap();
        assert_eq!(fw.image.function_count(), want, "{}", spec.name);
    }
}

#[test]
fn table1_mean_and_median() {
    // Paper: "an average of 915 symbols and a median of 917".
    let counts: Vec<usize> = apps::all_paper_apps().iter().map(|a| a.functions).collect();
    let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
    assert!((mean - 915.0).abs() < 1.0, "mean {mean}");
    let mut sorted = counts.clone();
    sorted.sort_unstable();
    assert_eq!(sorted[1], 917);
}

#[test]
fn table2_startup_overhead_within_1ms() {
    // Paper Table II: 19209 / 21206 / 15412 ms. The model (image bytes at
    // 115200 baud, 10 bits/byte) lands within 1 ms of each — evidence that
    // the measured overhead is serial-transfer dominated, as §VII-B1 says.
    let link = SerialLink::prototype();
    let expected = [19_209.0f64, 21_206.0, 15_412.0];
    for (spec, want) in apps::all_paper_apps().iter().zip(expected) {
        let fw = build(spec, &BuildOptions::safe_mavr()).unwrap();
        let got = link.transfer_ms(fw.image.code_size());
        assert!(
            (got - want).abs() <= 1.0,
            "{}: {got:.1} vs {want}",
            spec.name
        );
    }
}

#[test]
fn table2_average_and_median() {
    // Paper: "an average of 18609 ms with a median of 19209 ms".
    let expected_mean: f64 = (19_209.0 + 21_206.0 + 15_412.0) / 3.0;
    assert!((expected_mean - 18_609.0).abs() < 1.0);
}

#[test]
fn table3_code_sizes_exact() {
    // Paper Table III (calibration targets; the toolchain effects are
    // modelled, the absolute bytes calibrated — see DESIGN.md).
    let rows = [
        (apps::synth_plane(), 221_608u32, 221_294u32),
        (apps::synth_copter(), 244_532, 244_292),
        (apps::synth_rover(), 177_870, 177_556),
    ];
    for (spec, stock_want, mavr_want) in rows {
        let stock = build(&spec, &BuildOptions::safe_stock()).unwrap();
        let mavr = build(&spec, &BuildOptions::safe_mavr()).unwrap();
        assert_eq!(stock.image.code_size(), stock_want, "{} stock", spec.name);
        assert_eq!(mavr.image.code_size(), mavr_want, "{} mavr", spec.name);
        assert!(
            mavr.image.code_size() < stock.image.code_size(),
            "paper reports a small decrease under the custom toolchain"
        );
    }
}

#[test]
fn entropy_800_functions_is_6567_bits() {
    // §VIII-B: "800 symbols … generates 6567 bits of entropy".
    let bits = mavr_repro::mavr::math::entropy_bits(800);
    assert_eq!(bits.round() as i64, 6567);
}

#[test]
fn production_startup_estimate_is_about_4s() {
    // §VII-B1: "A conservative estimate on a production PCB … would be 4
    // seconds".
    let link = SerialLink::production();
    let fw = build(&apps::synth_plane(), &BuildOptions::safe_mavr()).unwrap();
    let ms = link.programming_ms(fw.image.code_size());
    assert!((3_000.0..5_000.0).contains(&ms), "{ms:.0} ms");
}

#[test]
fn prototype_link_is_11_bytes_per_ms() {
    // §VII-B1: "115200 baud rate which allows for a maximum of 11 bytes
    // per millisecond".
    let b = SerialLink::prototype().bytes_per_ms();
    assert_eq!(b.floor(), 11.0);
}

#[test]
fn apm_cost_increase_numbers() {
    // §V-A4: $7.74 + $3.94 = $11.68 over a $159.99 board = 7.3%.
    let added = 7.74f64 + 3.94;
    assert!((added - 11.68).abs() < 1e-9);
    let pct = added / 159.99 * 100.0;
    assert!((pct - 7.3).abs() < 0.05, "{pct:.2}%");
}
