//! The MAVR defense in action (§V, §VII-A): the same stealthy attack that
//! silently hijacks an unprotected APM fails against the randomized board,
//! gets detected by the master processor, and the board re-randomizes and
//! recovers in flight.
//!
//! ```text
//! cargo run --example mavr_defense
//! ```

use mavr_repro::mavlink_lite::GroundStation;
use mavr_repro::mavr::policy::RandomizationPolicy;
use mavr_repro::mavr_board::MavrBoard;
use mavr_repro::rop::attack::AttackContext;
use mavr_repro::synth_firmware::{apps, build, layout, BuildOptions};
use mavr_repro::telemetry::{RingRecorder, Telemetry};

fn main() {
    let fw = build(&apps::tiny_test_app(), &BuildOptions::vulnerable_mavr()).unwrap();

    // The attack is crafted against the unprotected binary, as in the
    // paper's threat model.
    let ctx = AttackContext::discover(&fw.image).unwrap();
    let payload = ctx
        .v2_payload(&[(layout::GYRO + 3, [0xde, 0xad, 0x42])])
        .unwrap();

    // Provision the MAVR board: container uploaded to the external flash,
    // master randomizes and programs the application processor, lock fuse
    // set.
    println!("provisioning MAVR boards and attacking each with the same payload:\n");
    let mut detected = 0;
    let mut succeeded = 0;
    let mut first_recovery: Option<(u64, String, Option<String>)> = None;
    let trials = 8;
    for seed in 0..trials {
        // Each board flies with a flight recorder attached; the ring keeps
        // the latest events so we can replay the first detected attack.
        let tele = Telemetry::new(RingRecorder::new(512));
        let mut board = MavrBoard::provision_with(
            &fw.image,
            seed,
            RandomizationPolicy::default(),
            tele.clone(),
        )
        .unwrap();
        board.forensic_annotations = ctx.annotations();
        assert!(
            board.attacker_flash_view().iter().all(|&b| b == 0xff),
            "readout protection hides the randomized binary"
        );
        board.run(300_000).unwrap();
        let mut gcs = GroundStation::new();
        board.uplink(&gcs.exploit_packet(&payload).unwrap());
        board.run(6_000_000).unwrap();

        let hit = board.app.machine.peek_range(layout::GYRO + 3, 3) == vec![0xde, 0xad, 0x42];
        let recovered = board.recoveries() >= 1;
        println!(
            "  board #{seed}: attack {}  {}",
            if hit { "SUCCEEDED" } else { "failed   " },
            if recovered {
                "-> garbage execution detected, board re-randomized and reflashed"
            } else {
                "-> layout absorbed the bad jump; board kept flying"
            }
        );
        if hit {
            succeeded += 1;
        }
        if recovered {
            detected += 1;
            if first_recovery.is_none() {
                let timeline = tele
                    .with_recorder::<RingRecorder, String>(|ring| {
                        ring.events()
                            .map(|ev| {
                                let cycle = ev
                                    .cycle
                                    .map(|c| format!("@{c:>9}"))
                                    .unwrap_or_else(|| " ".repeat(10));
                                let fields: Vec<String> =
                                    ev.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
                                format!(
                                    "    [{:>3}] {cycle} {:<22} {}",
                                    ev.seq,
                                    ev.kind,
                                    fields.join(" ")
                                )
                            })
                            .collect::<Vec<_>>()
                            .join("\n")
                    })
                    .unwrap_or_default();
                let narrative = board.last_crash.as_ref().map(|c| c.narrative());
                first_recovery = Some((seed, timeline, narrative));
            }
            // Show the recovered board is healthy.
            let _ = board.downlink();
            board.run(1_500_000).unwrap();
            let mut gcs2 = GroundStation::new();
            gcs2.ingest(&board.downlink());
            assert!(gcs2.heartbeats.len() > 5, "telemetry resumed after reflash");
        }
    }

    if let Some((seed, timeline, narrative)) = &first_recovery {
        println!("\nflight-recorder event timeline for board #{seed} (first detection):");
        println!("{timeline}");
        if let Some(n) = narrative {
            println!("\n  post-mortem forensics (crash report captured before reflash):");
            for line in n.lines() {
                println!("    {line}");
            }
        }
    }

    println!(
        "\nsummary: {succeeded}/{trials} attacks succeeded, {detected}/{trials} failed attempts \
         detected and recovered"
    );
    println!(
        "brute force left to the attacker: ~n! permutations; even this tiny app's {} functions \
         give {:.0} bits of entropy (SynthRover's 800 give {:.0} — paper: 6567)",
        fw.image.function_count(),
        mavr_repro::mavr::math::entropy_bits(fw.image.function_count() as u64),
        mavr_repro::mavr::math::entropy_bits(800)
    );
    assert_eq!(succeeded, 0, "MAVR must defeat every attack instance");
    println!("\nok: randomization defeated the stealthy attack");
}
