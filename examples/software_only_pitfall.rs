//! Why MAVR needs its hardware (§VIII-A): a software-only variant that
//! randomizes once at flash time fails on both counts the paper raises —
//! it cannot recover from a failed attack in flight, and its single fixed
//! permutation leaks to a persistent attacker polynomially fast.
//!
//! ```text
//! cargo run --release --example software_only_pitfall
//! ```

use mavr_repro::mavlink_lite::channel::LossyChannel;
use mavr_repro::mavlink_lite::GroundStation;
use mavr_repro::mavr_board::SoftwareOnlyBoard;
use mavr_repro::rop::attack::AttackContext;
use mavr_repro::rop::brute;
use mavr_repro::synth_firmware::{apps, build, layout, BuildOptions};

fn main() {
    let fw = build(&apps::tiny_test_app(), &BuildOptions::vulnerable_mavr()).unwrap();
    let ctx = AttackContext::discover(&fw.image).unwrap();
    let payload = ctx
        .v2_payload(&[(layout::GYRO + 3, [0xde, 0xad, 0x42])])
        .unwrap();

    // Problem 1 — no fault tolerance: find a layout the failed attack
    // crashes, and watch it stay dead.
    println!("problem 1: a failed attack bricks the board until someone can touch it\n");
    for seed in 0..20u64 {
        let mut board = SoftwareOnlyBoard::flash(&fw.image, seed).unwrap();
        board.run(300_000);
        let mut gcs = GroundStation::new();
        // The attacker's radio link, modeled explicitly (zero loss — the
        // exploit must arrive intact).
        let mut uplink = LossyChannel::perfect();
        board
            .machine
            .uart0
            .inject(&uplink.transmit(&gcs.exploit_packet(&payload).unwrap()));
        assert_eq!(uplink.stats.dropped + uplink.stats.corrupted, 0);
        board.run(6_000_000);
        if board.dead() {
            println!("  layout #{seed}: attack failed AND crashed the autopilot");
            let toggles = board.machine.heartbeat.toggles().len();
            board.run(10_000_000);
            println!(
                "  ten more million cycles: still dead ({} heartbeat toggles, unchanged)",
                board.machine.heartbeat.toggles().len() - toggles
            );
            println!(
                "  -> \"the only way to recover … is cycling its power source, which is\n\
                 \x20    extremely difficult when a UAV is in flight\" (§VIII-A)\n"
            );
            break;
        }
    }

    // Problem 2 — information leak against the fixed permutation.
    println!("problem 2: one permutation forever leaks to a persistent attacker\n");
    let n = fw.image.function_count();
    let mut rng = brute::seeded_rng(1);
    let leak_probes = brute::simulate_incremental_leak(12, &mut rng);
    println!(
        "  incremental-leak attacker vs a FIXED 12-function layout: {} probes (theory ~{:.0})",
        leak_probes,
        brute::expected_incremental_leak(12.0)
    );
    println!(
        "  scaled to this app's {n} functions: ~{:.0} probes — an afternoon of packets",
        brute::expected_incremental_leak(n as f64)
    );
    println!(
        "  the re-randomizing MAVR defense instead costs ~n! tries: {:.0} bits of entropy",
        mavr_repro::mavr::math::entropy_bits(n as u64)
    );
    println!("\nok: both §VIII-A failure modes demonstrated — hence the dual-processor design");
}
