//! A benign ground-station session (§II-C): connect to the UAV, stream
//! telemetry, tune a parameter over MAVLink, and watch the attitude data —
//! the normal operation every attack and defense in this repository wraps
//! around.
//!
//! ```text
//! cargo run --example ground_station
//! ```

use mavr_repro::avr_sim::Machine;
use mavr_repro::mavlink_lite::channel::LossyChannel;
use mavr_repro::mavlink_lite::{msg, GroundStation};
use mavr_repro::synth_firmware::{apps, build, layout, BuildOptions};

fn main() {
    // A safe (length-checked) build, as shipped firmware would be.
    let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
    let mut uav = Machine::new_atmega2560();
    uav.load_flash(0, &fw.image.bytes);

    let mut gcs = GroundStation::new();
    // The radio link, modeled explicitly in both directions. Zero loss
    // here — `mavr-cli fleet --loss` turns the same dials up.
    let mut uplink = LossyChannel::perfect();
    let mut downlink = LossyChannel::perfect();

    // Fly a bit and decode telemetry.
    uav.run(1_500_000);
    gcs.ingest(&downlink.transmit(&uav.uart0.take_tx()));
    println!(
        "session established: {} packets ({} heartbeats), 0x{:02x} vehicle type",
        gcs.received.len(),
        gcs.heartbeats.len(),
        gcs.heartbeats.last().map(|h| h.vehicle_type).unwrap_or(0)
    );

    // The gyro words stream in RAW_IMU.
    let imu_frames: Vec<msg::RawImu> = gcs
        .received
        .iter()
        .filter(|p| p.msgid == msg::RAW_IMU_ID)
        .map(|p| msg::RawImu::from_payload(p.msgid, &p.payload).unwrap())
        .collect();
    println!(
        "RAW_IMU frames: {} (gyro low byte tracks the tick counter: {:?} ...)",
        imu_frames.len(),
        imu_frames
            .iter()
            .take(5)
            .map(|f| f.gyro[0] & 0xff)
            .collect::<Vec<_>>()
    );

    // Tune a parameter, as an operator console would.
    println!("\nsending PARAM_SET RATE_RLL_P = 0.75");
    uav.uart0
        .inject(&uplink.transmit(&gcs.param_set(b"RATE_RLL_P", 0.75)));
    uav.run(1_500_000);
    let v = f32::from_le_bytes([
        uav.peek_data(layout::PARAM_VALUE),
        uav.peek_data(layout::PARAM_VALUE + 1),
        uav.peek_data(layout::PARAM_VALUE + 2),
        uav.peek_data(layout::PARAM_VALUE + 3),
    ]);
    println!(
        "UAV committed parameter value {v} ({} PARAM_SET frames handled)",
        uav.peek_data(layout::PARAM_SET_COUNT)
    );

    // A corrupted frame is dropped by the checksum, not executed.
    let mut bad = gcs.param_set(b"EVIL", 9.9);
    let n = bad.len();
    bad[n - 1] ^= 0xff;
    uav.uart0.inject(&uplink.transmit(&bad));
    uav.run(1_500_000);
    println!(
        "corrupted frame: still {} PARAM_SETs handled, {} bad checksums counted by the UAV",
        uav.peek_data(layout::PARAM_SET_COUNT),
        uav.peek_data(layout::BAD_CRC_COUNT)
    );

    gcs.ingest(&downlink.transmit(&uav.uart0.take_tx()));
    assert_eq!(v, 0.75);
    assert_eq!(uav.peek_data(layout::PARAM_SET_COUNT), 1);
    assert_eq!(uav.peek_data(layout::BAD_CRC_COUNT), 1);
    assert!(gcs.link_alive(20, 3));
    // A perfect channel is transparent: every byte in, every byte out.
    assert_eq!(downlink.stats.bytes_in, downlink.stats.bytes_out);
    assert_eq!(uplink.stats.dropped + uplink.stats.corrupted, 0);
    println!(
        "\nok: healthy MAVLink session ({} bytes down, {} bytes up, zero impairments)",
        downlink.stats.bytes_out, uplink.stats.bytes_out
    );
}
