//! The paper's stealthy attack (V2, §IV-D), end to end against an
//! unprotected APM: overwrite the gyroscope state over MAVLink, repair the
//! stack, and leave the ground station none the wiser.
//!
//! ```text
//! cargo run --example stealthy_attack
//! ```

use mavr_repro::avr_sim::Machine;
use mavr_repro::mavlink_lite::channel::LossyChannel;
use mavr_repro::mavlink_lite::{msg, GroundStation};
use mavr_repro::rop::attack::AttackContext;
use mavr_repro::synth_firmware::{apps, build, layout, BuildOptions};
use mavr_repro::telemetry::{RingRecorder, Telemetry, Value};

fn main() {
    // Flight recorder: every stage of the attack leaves a structured event.
    let tele = Telemetry::new(RingRecorder::new(256));

    // The victim: vulnerable firmware (MAVLink length check disabled).
    let fw = build(&apps::tiny_test_app(), &BuildOptions::vulnerable_mavr()).unwrap();
    let mut uav = Machine::new_atmega2560();
    uav.telemetry = tele.clone();
    uav.load_flash(0, &fw.image.bytes);
    uav.run(200_000);

    // The attacker: has the binary (threat model §IV-A). Static analysis +
    // a dry run on their own copy.
    let ctx = AttackContext::discover_with(&fw.image, &tele).unwrap();
    println!("attacker analysis of the unprotected binary:");
    println!("  stk_move gadget        at {:#x}", ctx.gadgets.stk_move);
    println!(
        "  write_mem_gadget       at {:#x}",
        ctx.gadgets.write_mem_std
    );
    println!("  handler stack buffer   at {:#06x}", ctx.buffer);
    println!("  saved return address   = {:02x?}", ctx.orig_ret);

    let gyro_before = uav.peek_range(layout::GYRO + 3, 3);
    let toggles_before = uav.heartbeat.toggles().len();

    // Craft and send the stealthy payload: set gyro bytes, then repair.
    let payload = ctx
        .v2_payload(&[(layout::GYRO + 3, [0xde, 0xad, 0x42])])
        .unwrap();
    println!(
        "\nexploit PARAM_SET payload: {} bytes (chain hidden inside the {}-byte frame)",
        payload.len(),
        layout::HANDLER_FRAME
    );
    // The attack rides the same radio-link model as benign traffic — a
    // perfect channel here; `mavr-cli fleet --loss` shows what per-byte
    // impairment does to the exploit frame.
    let mut uplink = LossyChannel::perfect();
    let mut downlink = LossyChannel::perfect();
    let mut gcs = GroundStation::new();
    uav.uart0
        .inject(&uplink.transmit(&gcs.exploit_packet(&payload).unwrap()));
    tele.emit("attack.injected", Some(uav.cycles()), || {
        vec![("payload_bytes", Value::U64(payload.len() as u64))]
    });

    // Let the UAV "fly" through the attack.
    uav.run(3_000_000);
    tele.emit("attack.clean_return", Some(uav.cycles()), || {
        vec![("fault", Value::Bool(uav.fault().is_some()))]
    });

    let gyro_after = uav.peek_range(layout::GYRO + 3, 3);
    println!("\nresult:");
    println!("  gyro[3..6] before attack: {gyro_before:02x?}");
    println!("  gyro[3..6] after attack : {gyro_after:02x?}");
    println!("  machine fault           : {:?}", uav.fault());
    println!(
        "  heartbeats kept toggling: {} -> {}",
        toggles_before,
        uav.heartbeat.toggles().len()
    );

    // The ground station's view: a perfectly healthy link, telemetry now
    // carrying the attacker's sensor values.
    gcs.ingest(&downlink.transmit(&uav.uart0.take_tx()));
    println!(
        "  ground station: {} heartbeats, {} checksum errors, link alive: {}",
        gcs.heartbeats.len(),
        gcs.bad_checksums(),
        gcs.link_alive(20, 3)
    );
    let imu = gcs
        .received
        .iter()
        .rev()
        .find(|p| p.msgid == msg::RAW_IMU_ID)
        .map(|p| msg::RawImu::from_payload(p.msgid, &p.payload).unwrap())
        .unwrap();
    println!("  last RAW_IMU gyro words : {:?}", imu.gyro);

    // The flight recorder's view of the same story: the operator saw
    // nothing, but the event stream has the whole kill chain.
    println!("\nflight-recorder event timeline:");
    tele.with_recorder::<RingRecorder, ()>(|ring| {
        for ev in ring.events() {
            let cycle = ev
                .cycle
                .map(|c| format!("@{c:>9}"))
                .unwrap_or_else(|| " ".repeat(10));
            let fields: Vec<String> = ev.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
            println!(
                "  [{:>3}] {cycle} {:<22} {}",
                ev.seq,
                ev.kind,
                fields.join(" ")
            );
        }
    });
    println!(
        "  ({} events total; counters: {:?})",
        tele.events_emitted(),
        uav.counters()
    );

    assert_eq!(gyro_after, vec![0xde, 0xad, 0x42]);
    assert!(uav.fault().is_none());
    assert!(gcs.link_alive(20, 3));
    println!("\nok: sensor overwritten, clean return, attack invisible to the operator");
}
