//! Quickstart: build a synthetic autopilot, randomize it with MAVR, and
//! watch it fly on the simulator.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mavr_repro::avr_sim::Machine;
use mavr_repro::mavlink_lite::channel::LossyChannel;
use mavr_repro::mavlink_lite::GroundStation;
use mavr_repro::mavr::{randomize, RandomizeOptions};
use mavr_repro::synth_firmware::{apps, build, BuildOptions};

fn main() {
    // 1. "Compile" an autopilot application with the MAVR custom toolchain
    //    (--no-relax, -mno-call-prologues).
    let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
    println!(
        "built {}: {} bytes, {} functions",
        fw.spec.name,
        fw.image.code_size(),
        fw.image.function_count()
    );

    // 2. Host-side preprocessing: symbol table prepended to the HEX file.
    let container = mavr_repro::mavr::preprocess(&fw.image).unwrap();
    println!(
        "preprocessed container: {} bytes of HEX+symbols",
        container.to_text().len()
    );

    // 3. The MAVR master randomizes the function layout.
    let mut rng = mavr_repro::mavr::seeded_rng(2015);
    let r = randomize(&fw.image, &mut rng, &RandomizeOptions::default()).unwrap();
    let moved = fw
        .image
        .functions()
        .filter(|s| r.image.symbol(&s.name).unwrap().addr != s.addr)
        .count();
    println!(
        "randomized: {} of {} functions moved, image size unchanged ({} bytes)",
        moved,
        fw.image.function_count(),
        r.image.code_size()
    );

    // 4. Run the randomized binary on the ATmega2560 simulator.
    let mut m = Machine::new_atmega2560();
    m.load_flash(0, &r.image.bytes);
    m.run(2_000_000); // 0.125 s of flight at 16 MHz
    println!(
        "ran 2M cycles: {} heartbeat toggles, fault: {:?}",
        m.heartbeat.toggles().len(),
        m.fault()
    );

    // 5. The ground station decodes its telemetry over an explicit radio
    //    link (zero loss here; `mavr-cli fleet --loss` turns the dials up)
    //    — randomization is invisible to correct execution.
    let mut gcs = GroundStation::new();
    let mut downlink = LossyChannel::perfect();
    gcs.ingest(&downlink.transmit(&m.uart0.take_tx()));
    println!(
        "ground station: {} heartbeats, {} packets, {} checksum errors",
        gcs.heartbeats.len(),
        gcs.received.len(),
        gcs.bad_checksums()
    );
    assert_eq!(gcs.bad_checksums(), 0);
    assert!(gcs.heartbeats.len() > 10);
    // A perfect channel is transparent: every byte in, every byte out.
    assert_eq!(downlink.stats.bytes_in, downlink.stats.bytes_out);
    println!("ok: randomized firmware flies");
}
