//! Attack V3 (§IV-E): the trampoline technique. Clean-return carrier
//! packets stage an arbitrarily large second-stage chain into free SRAM;
//! a final packet pivots onto it, runs it, repairs the stack and resumes —
//! the payload size is "bounded only by the amount of free memory".
//!
//! ```text
//! cargo run --example trampoline_attack
//! ```

use mavr_repro::avr_sim::Machine;
use mavr_repro::mavlink_lite::channel::LossyChannel;
use mavr_repro::mavlink_lite::GroundStation;
use mavr_repro::rop::attack::AttackContext;
use mavr_repro::synth_firmware::{apps, build, BuildOptions};

fn main() {
    let fw = build(&apps::tiny_test_app(), &BuildOptions::vulnerable_mavr()).unwrap();
    let mut uav = Machine::new_atmega2560();
    uav.load_flash(0, &fw.image.bytes);
    uav.run(200_000);

    let ctx = AttackContext::discover(&fw.image).unwrap();

    // A payload far too large for one packet's in-buffer chain: write a
    // 90-byte "implant" into free SRAM at 0x1d00.
    let implant: Vec<u8> = (0..90u8)
        .map(|i| i.wrapping_mul(7).wrapping_add(1))
        .collect();
    let dest = 0x1d00u16;
    let writes: Vec<(u16, [u8; 3])> = implant
        .chunks(3)
        .enumerate()
        .map(|(i, c)| (dest + (i * 3) as u16, [c[0], c[1], c[2]]))
        .collect();
    println!(
        "implant: {} bytes = {} write gadget-invocations — far beyond one packet's chain budget",
        implant.len(),
        writes.len()
    );

    let packets = ctx.v3_packets(&writes, 0x1400).unwrap();
    println!(
        "trampoline plan: {} carrier packets (clean return each) + 1 trigger packet",
        packets.len() - 1
    );

    // The attacker's radio link, modeled explicitly (zero loss: every
    // carrier must arrive intact for the staged chain to assemble).
    let mut uplink = LossyChannel::perfect();
    let mut downlink = LossyChannel::perfect();
    let mut gcs = GroundStation::new();
    for (i, p) in packets.iter().enumerate() {
        uav.uart0
            .inject(&uplink.transmit(&gcs.exploit_packet(p).unwrap()));
        uav.run(2_500_000);
        assert!(
            uav.fault().is_none(),
            "packet {i}: the board must keep flying (fault: {:?})",
            uav.fault()
        );
    }

    let planted = uav.peek_range(dest, implant.len());
    println!(
        "implant at {dest:#x}: {} / {} bytes correct",
        planted.iter().zip(&implant).filter(|(a, b)| a == b).count(),
        implant.len()
    );
    gcs.ingest(&downlink.transmit(&uav.uart0.take_tx()));
    println!(
        "ground station saw {} heartbeats, {} checksum errors — nothing amiss",
        gcs.heartbeats.len(),
        gcs.bad_checksums()
    );

    assert_eq!(planted, implant);
    assert!(gcs.link_alive(20, 3));
    // A perfect channel is transparent: every byte in, every byte out.
    assert_eq!(uplink.stats.dropped + uplink.stats.corrupted, 0);
    assert_eq!(downlink.stats.bytes_in, downlink.stats.bytes_out);
    println!("\nok: arbitrarily large payload staged and executed, stealth preserved");
}
