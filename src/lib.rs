//! Umbrella crate for the MAVR reproduction.
//!
//! This package exists to host the workspace-spanning integration tests in
//! `tests/` and the runnable examples in `examples/`. The functionality
//! lives in the member crates:
//!
//! * [`avr_core`] — AVR ISA model (encode/decode/disassemble),
//! * [`avr_sim`] — ATmega2560 machine simulator,
//! * [`hexfile`] — Intel HEX and the MAVR symbol-table container,
//! * [`avr_asm`] — assembler/linker substrate,
//! * [`mavlink_lite`] — MAVLink-style protocol and ground station,
//! * [`synth_firmware`] — synthetic autopilot firmware generator,
//! * [`rop`] — gadget scanner and the paper's stealthy attacks,
//! * [`mavr`] — the fine-grained randomization defense,
//! * [`mavr_board`] — the dual-processor MAVR hardware platform simulation,
//! * [`mavr_snapshot`] — deterministic snapshot/replay: time-travel
//!   forensics and checkpointable executions,
//! * [`mavr_fleet`] — the many-board campaign engine over lossy links.

pub use avr_asm;
pub use avr_core;
pub use avr_sim;
pub use hexfile;
pub use mavlink_lite;
pub use mavr;
pub use mavr_board;
pub use mavr_fleet;
pub use mavr_snapshot;
pub use rop;
pub use synth_firmware;
pub use telemetry;
